(** The object store (paper Section 4): typed, named, transactional storage
    of application objects over the chunk store.

    Design points carried over from the paper:
    - single-object chunks: an object's id *is* its chunk id (Section
      4.2.1);
    - an LRU cache of unpickled objects, pinned while referenced, with
      no-steal buffering of dirty objects (Section 4.2.2);
    - strict two-phase locking with shared/exclusive object locks, lock
      omissions caught by construction (objects are only reachable through
      refs tied to a transaction), deadlocks broken by timeout, and the
      single state mutex released while blocked on a lock (Section 4.2.3);
    - refs are invalidated when their transaction ends; dereferencing a
      stale ref is a checked runtime error (Section 4.1);
    - typed opens are checked against the stored class via type witnesses —
      the C++ RTTI check of the paper;
    - explicit insert/remove rather than persistence-by-reachability, and
      no swizzling: objects refer to each other by [oid] (Section 4.1). *)

open Tdb_chunk

type oid = int

let pp_oid = Format.pp_print_int

exception Unknown_object of oid
exception Stale_ref
exception Removed_in_transaction of oid

type config = {
  lock_timeout : float; (** seconds before a blocked open raises (deadlock breaking) *)
  locking : bool; (** paper: "the application may even switch off locking" *)
  cache_budget : int; (** object cache budget, bytes *)
}

let default_config = { lock_timeout = 1.0; locking = true; cache_budget = 4 * 1024 * 1024 }

let catalog_cid = 1 (* reserved chunk id holding the named-roots catalog *)

type t = {
  cs : Shard_store.t;
  cfg : config;
  mu : Mutex.t;
  locks : Lock_manager.t;
  cache : Cache.t;
  mutable roots : (string * oid) list;
  mutable next_txn_id : int;
}

type txn_state = Active | Committed | Aborted

let is_active = function Active -> true | Committed | Aborted -> false

type txn = {
  store : t;
  txn_id : int;
  mutable state : txn_state;
  pins : (oid, Cache.entry) Hashtbl.t; (* every object referenced by this txn *)
  writes : (oid, Cache.entry) Hashtbl.t; (* inserted or opened writable *)
  mutable inserted : oid list;
  mutable removed : oid list;
  mutable root_updates : (string * oid option) list;
  mutable alloc_shard : int option; (* shard affinity for this txn's inserts *)
}

(** A smart pointer: valid only while its transaction is active (paper
    Figure 3: "Invalidates ... the Refs generated during it"). The phantom
    parameter distinguishes read-only from writable references. *)
type ('a, 'mode) ref_ = { value : 'a; owner : txn }

type readonly = |
type writable = |

(** Dereference. @raise Stale_ref if the owning transaction has ended. *)
let deref (r : ('a, 'mode) ref_) : 'a =
  if not (is_active r.owner.state) then raise Stale_ref;
  r.value

let with_mu t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

(* --- named roots catalog --- *)

let encode_roots (roots : (string * oid) list) : string =
  let module P = Tdb_pickle.Pickle in
  let w = P.writer () in
  P.list w
    (fun w (name, oid) ->
      P.string w name;
      P.uint w oid)
    roots;
  P.contents w

let decode_roots (s : string) : (string * oid) list =
  let module P = Tdb_pickle.Pickle in
  let r = P.reader s in
  let roots =
    P.read_list r (fun r ->
        let name = P.read_string r in
        let oid = P.read_uint r in
        (name, oid))
  in
  P.expect_end r;
  roots

(* --- store lifecycle --- *)

let of_shard_store ?(config = default_config) (cs : Shard_store.t) : t =
  let roots = match Shard_store.read cs catalog_cid with s -> decode_roots s | exception Types.Not_written _ -> [] in
  {
    cs;
    cfg = config;
    mu = Mutex.create ();
    locks = Lock_manager.create ();
    cache = Cache.create ~budget:config.cache_budget;
    roots;
    next_txn_id = 1;
  }

let of_chunk_store ?config (cs : Chunk_store.t) : t = of_shard_store ?config (Shard_store.wrap cs)
let chunk_store t = t.cs
let held_count t = with_mu t (fun () -> Lock_manager.held_count t.locks)

(** Run [f] on the underlying chunk store while holding the state mutex,
    serializing it against every transaction. The backup/publish path uses
    this: snapshot creation, archive emission and chain-state commits must
    not interleave with a transaction's own commit. [f] must not call back
    into this object store (the mutex is not reentrant). *)
let with_store t (f : Shard_store.t -> 'a) : 'a = with_mu t (fun () -> f t.cs)

(** Replication ingest hook: run [f] (which may rewrite the store
    arbitrarily, e.g. {!Tdb_backup.Backup_store.apply_stream}) only when
    no transaction is in flight, then discard the object cache and reload
    the named-roots catalog — both may be invalidated by what [f] applied.
    Returns [None] without running [f] if any lock is held (the caller
    retries on its next tick); 2PL plus this quiesce check is what keeps
    follower reads serializable across ingested snapshots. *)
let ingest t (f : Shard_store.t -> 'a) : 'a option =
  with_mu t (fun () ->
      if Lock_manager.held_count t.locks > 0 then None
      else begin
        let r = f t.cs in
        Cache.drop_all t.cache;
        t.roots <-
          (match Shard_store.read t.cs catalog_cid with
          | s -> decode_roots s
          | exception Types.Not_written _ -> []);
        Some r
      end)
let close t = with_mu t (fun () -> Shard_store.close t.cs)
let checkpoint t = with_mu t (fun () -> Shard_store.checkpoint t.cs)
let cache_stats t = Cache.stats t.cache

let chunk_cache_stats t =
  let st = Shard_store.stats t.cs in
  (st.Chunk_store.cache_hits, st.Chunk_store.cache_misses, st.Chunk_store.cache_evictions)

let set_chunk_cache_budget t b =
  with_mu t (fun () ->
      let n = Shard_store.shards t.cs in
      for s = 0 to n - 1 do
        Chunk_store.set_cache_budget (Shard_store.shard_store t.cs s) (b / n)
      done)

(** Committed value of a named root. *)
let get_root t (name : string) : oid option = with_mu t (fun () -> List.assoc_opt name t.roots)

(* --- transactions --- *)

let begin_ (t : t) : txn =
  with_mu t (fun () ->
      let id = t.next_txn_id in
      t.next_txn_id <- t.next_txn_id + 1;
      {
        store = t;
        txn_id = id;
        state = Active;
        pins = Hashtbl.create 16;
        writes = Hashtbl.create 8;
        inserted = [];
        removed = [];
        root_updates = [];
        alloc_shard = None;
      })

let check_active (x : txn) = if not (is_active x.state) then raise Stale_ref

(** Pin this transaction's inserts to one shard (collections use this so
    an object lands with its collection's other rows; [None] restores the
    router's round-robin default). A no-op at one shard. *)
let set_alloc_shard (x : txn) (s : int option) : unit =
  with_mu x.store (fun () ->
      check_active x;
      x.alloc_shard <- s)

let alloc_shard (x : txn) : int option =
  with_mu x.store (fun () ->
      check_active x;
      x.alloc_shard)

let lock x ~oid ~mode =
  if x.store.cfg.locking then
    Lock_manager.acquire x.store.locks ~mu:x.store.mu ~txn:x.txn_id ~oid ~mode
      ~timeout:x.store.cfg.lock_timeout

let pin_entry x (e : Cache.entry) =
  if not (Hashtbl.mem x.pins e.Cache.oid) then begin
    Cache.pin e;
    Hashtbl.replace x.pins e.Cache.oid e
  end

let load t (oid : oid) : Cache.entry =
  match Cache.find t.cache oid with
  | Some e -> e
  | None -> (
      match Shard_store.read t.cs oid with
      | bytes -> Cache.put t.cache oid (Obj_class.unpickle_value bytes) ~size:(String.length bytes)
      | exception Types.Not_written _ -> raise (Unknown_object oid) )

(** Warm the two-level cache for a batch of objects: the chunk reads for
    every object not already cached run through
    {!Chunk_store.read_many}, whose verify/decrypt/parse work fans out
    over the domain pool — the batched-read entry point for scans and
    restart warm-up. Takes no locks and pins nothing; returns how many
    objects were actually fetched.
    @raise Unknown_object if any requested object does not exist. *)
let preload (t : t) (oids : oid list) : int =
  with_mu t (fun () ->
      let missing = List.filter (fun oid -> Cache.find t.cache oid = None) oids in
      match Shard_store.read_many t.cs missing with
      | chunks ->
          List.iter2
            (fun oid bytes ->
              ignore (Cache.put t.cache oid (Obj_class.unpickle_value bytes) ~size:(String.length bytes)))
            missing chunks;
          List.length missing
      | exception Types.Not_written oid -> raise (Unknown_object oid))

(** Insert a new object; it is immediately locked exclusively, pinned and
    dirty (no-steal: it stays in cache until commit writes it). Returns its
    persistent id. *)
let insert (x : txn) (cls : 'a Obj_class.t) (v : 'a) : oid =
  with_mu x.store (fun () ->
      check_active x;
      let oid = Shard_store.allocate ?shard:x.alloc_shard x.store.cs in
      lock x ~oid ~mode:Lock_manager.Exclusive;
      let e = Cache.put x.store.cache oid (Obj_class.Value (cls, v)) ~size:0 in
      pin_entry x e;
      Hashtbl.replace x.writes oid e;
      x.inserted <- oid :: x.inserted;
      oid)

let open_gen (x : txn) (cls : 'a Obj_class.t) (oid : oid) ~(mode : Lock_manager.mode) : 'a =
  with_mu x.store (fun () ->
      check_active x;
      if List.mem oid x.removed then raise (Removed_in_transaction oid);
      lock x ~oid ~mode;
      let e = load x.store oid in
      pin_entry x e;
      (match mode with Lock_manager.Exclusive -> Hashtbl.replace x.writes oid e | Lock_manager.Shared -> ());
      Obj_class.cast cls e.Cache.value)

(** Open for reading: shared lock, const view. *)
let open_readonly (x : txn) (cls : 'a Obj_class.t) (oid : oid) : ('a, readonly) ref_ =
  { value = open_gen x cls oid ~mode:Lock_manager.Shared; owner = x }

(** Open for writing: exclusive lock; the object becomes part of the
    transaction's write set and will be pickled and committed at commit. *)
let open_writable (x : txn) (cls : 'a Obj_class.t) (oid : oid) : ('a, writable) ref_ =
  { value = open_gen x cls oid ~mode:Lock_manager.Exclusive; owner = x }

(** Replace the stored value of [oid] with [v] wholesale (exclusive lock;
    the object joins the write set exactly as {!open_writable} would).
    Unlike mutating through a writable ref, the caller supplies a complete
    new value — the primitive a network server needs to apply a
    client-supplied state. The class is checked against the stored
    object. *)
let update (x : txn) (cls : 'a Obj_class.t) (oid : oid) (v : 'a) : unit =
  with_mu x.store (fun () ->
      check_active x;
      if List.mem oid x.removed then raise (Removed_in_transaction oid);
      lock x ~oid ~mode:Lock_manager.Exclusive;
      let e = load x.store oid in
      (* class check: updating at the wrong class is the same error as
         opening at the wrong class *)
      ignore (Obj_class.cast cls e.Cache.value);
      pin_entry x e;
      e.Cache.value <- Obj_class.Value (cls, v);
      Hashtbl.replace x.writes oid e)

(** Remove an object from the store; its id is freed at commit. *)
let remove (x : txn) (oid : oid) : unit =
  with_mu x.store (fun () ->
      check_active x;
      if List.mem oid x.removed then raise (Removed_in_transaction oid);
      lock x ~oid ~mode:Lock_manager.Exclusive;
      (* ensure it exists (signals like the chunk layer does) *)
      (match Hashtbl.mem x.writes oid with
      | true -> ()
      | false -> ignore (load x.store oid));
      Hashtbl.remove x.writes oid;
      x.inserted <- List.filter (fun o -> not (Int.equal o oid)) x.inserted;
      x.removed <- oid :: x.removed)

(** Register/overwrite (or with [None], clear) a named root within the
    transaction. *)
let set_root (x : txn) (name : string) (oid : oid option) : unit =
  with_mu x.store (fun () ->
      check_active x;
      x.root_updates <- (name, oid) :: x.root_updates)

(** Root as seen by this transaction (pending updates included). *)
let root (x : txn) (name : string) : oid option =
  with_mu x.store (fun () ->
      check_active x;
      match List.assoc_opt name x.root_updates with
      | Some v -> v
      | None -> List.assoc_opt name x.store.roots)

let finish (x : txn) (st : txn_state) =
  Hashtbl.iter (fun _ e -> Cache.unpin x.store.cache e) x.pins;
  Hashtbl.reset x.pins;
  Lock_manager.release_all x.store.locks ~txn:x.txn_id;
  x.state <- st

(** Commit: pickle the write set, push everything into one atomic chunk
    batch (objects, removals, catalog), and commit it — durably by default
    (paper Figure 3: commit(bool durable)). *)
let commit ?(durable = true) (x : txn) : unit =
  with_mu x.store (fun () ->
      check_active x;
      let t = x.store in
      (try
         Hashtbl.iter
           (fun oid (e : Cache.entry) ->
             let (Obj_class.Value (cls, v)) = e.Cache.value in
             let bytes = Obj_class.pickle_value cls v in
             Shard_store.write t.cs oid bytes;
             Cache.update_size t.cache e ~size:(String.length bytes))
           x.writes;
         List.iter
           (fun oid ->
             Shard_store.deallocate t.cs oid;
             Cache.remove t.cache oid)
           x.removed;
         if x.root_updates <> [] then begin
           let roots =
             List.fold_left
               (fun acc (name, v) ->
                 let acc = List.remove_assoc name acc in
                 match v with Some oid -> (name, oid) :: acc | None -> acc)
               t.roots (List.rev x.root_updates)
           in
           Shard_store.write t.cs catalog_cid (encode_roots roots);
           t.roots <- roots
         end;
         Shard_store.commit ~durable t.cs
       with exn ->
         Shard_store.abort_batch t.cs;
         finish x Aborted;
         (* failed commit behaves like abort: evict dirty objects *)
         Hashtbl.iter (fun oid _ -> Cache.remove t.cache oid) x.writes;
         List.iter (fun oid -> try Shard_store.deallocate t.cs oid with Types.Not_allocated _ -> ()) x.inserted;
         raise exn);
      finish x Committed)

(** Abort: discard the write set. Objects opened for writing are evicted
    from the cache (paper Section 4.2.3) so later reads refetch committed
    state; chunk ids allocated for inserted objects are released. *)
let abort (x : txn) : unit =
  with_mu x.store (fun () ->
      check_active x;
      let t = x.store in
      finish x Aborted;
      Hashtbl.iter (fun oid _ -> Cache.remove t.cache oid) x.writes;
      List.iter (fun oid -> try Shard_store.deallocate t.cs oid with Types.Not_allocated _ -> ()) x.inserted;
      Shard_store.abort_batch t.cs)

(** Durable barrier without a transaction: promote every committed
    nondurable transaction to durable with one sync + one counter bump
    (see {!Chunk_store.durable_barrier}). The group-commit coordinator's
    hook into the commit path: sessions commit nondurably under the state
    mutex, then one coordinator thread runs the barrier for all of them.

    The state mutex is {e released} during the physical wait (the staged
    {!Chunk_store.barrier_sync}): that window is exactly where concurrent
    sessions land the nondurable commits the next barrier coalesces —
    holding the mutex through the sync would serialize every commit
    behind the barrier and defeat group commit entirely. The caller (the
    coordinator) guarantees at most one barrier in flight. *)
let durable_barrier (t : t) : unit =
  let tok = with_mu t (fun () -> Shard_store.barrier_begin t.cs) in
  Shard_store.barrier_sync t.cs tok;
  with_mu t (fun () -> Shard_store.barrier_finish t.cs tok)

(** Run [f] in a transaction, committing on success and aborting on
    exception. *)
let with_txn ?durable (t : t) (f : txn -> 'a) : 'a =
  let x = begin_ t in
  match f x with
  | v ->
      commit ?durable x;
      v
  | exception exn ->
      if is_active x.state then abort x;
      raise exn
