(** Persistent class descriptors and the class registry.

    Mirrors the paper's Section 4.1: "Subclasses of Object must implement a
    method to pickle an object into a sequence of bytes, and a constructor
    to unpickle ... Each subclass must also provide a class id that is
    unique across all object classes and persists across system restarts.
    The subclass must register its unpickling constructor with the object
    store under its class id."

    A class is defined once per process with {!define}; the [name] is the
    persistent class id. The pickled representation of every object embeds
    its class name and version, so the store can find the right unpickler
    (and applications can evolve representations by bumping [version] and
    branching in [unpickle]). *)

exception Duplicate_class of string
exception Unknown_class of string
exception Type_mismatch of { expected : string; actual : string }

type 'a t = {
  name : string;
  version : int;
  pickle : Tdb_pickle.Pickle.writer -> 'a -> unit;
  unpickle : version:int -> Tdb_pickle.Pickle.reader -> 'a;
  witness : 'a Witness.t;
}

type packed_class = Any : 'a t -> packed_class

let registry : (string, packed_class) Hashtbl.t = Hashtbl.create 32

let define ~(name : string) ?(version = 1) ~(pickle : Tdb_pickle.Pickle.writer -> 'a -> unit)
    ~(unpickle : version:int -> Tdb_pickle.Pickle.reader -> 'a) () : 'a t =
  if Hashtbl.mem registry name then raise (Duplicate_class name);
  let cls = { name; version; pickle; unpickle; witness = Witness.create () } in
  Hashtbl.replace registry name (Any cls);
  cls

(** Remove a class from the registry (tests and dynamic unloading only). *)
let undefine (name : string) : unit = Hashtbl.remove registry name

let find (name : string) : packed_class =
  match Hashtbl.find_opt registry name with Some c -> c | None -> raise (Unknown_class name)

(** A value packaged with its dynamic class. *)
type packed_value = Value : 'a t * 'a -> packed_value

(** Serialize [v] with its class tag. *)
let pickle_value (cls : 'a t) (v : 'a) : string =
  let module P = Tdb_pickle.Pickle in
  let w = P.writer () in
  P.string w cls.name;
  P.uint w cls.version;
  cls.pickle w v;
  P.contents w

(** Deserialize bytes into a dynamically-typed value, dispatching on the
    embedded class name. *)
let unpickle_value (bytes : string) : packed_value =
  let module P = Tdb_pickle.Pickle in
  let r = P.reader bytes in
  let name = P.read_string r in
  let version = P.read_uint r in
  let (Any cls) = find name in
  let v = cls.unpickle ~version r in
  P.expect_end r;
  Value (cls, v)

(** Recover the static type from a packed value, checking the witness — the
    RTTI check behind typed opens. *)
let cast : type a. a t -> packed_value -> a =
 fun expected (Value (cls, v)) ->
  match Witness.eq expected.witness cls.witness with
  | Some Witness.Eq -> v
  | None -> raise (Type_mismatch { expected = expected.name; actual = cls.name })

let name_of (Value (cls, _) : packed_value) = cls.name
