(** The object store (paper Section 4): typed, named, transactional storage
    of application objects over the chunk store.

    An object's persistent id {e is} its chunk id (single-object chunks,
    Section 4.2.1). Recently used objects live decrypted, validated and
    unpickled in an LRU cache; dirty objects are pinned until commit
    (no-steal). Transactions use strict two-phase locking with
    shared/exclusive object locks, deadlocks broken by timeout; refs are
    invalidated when their transaction ends, and typed opens are checked
    against the stored class (type witnesses in place of the paper's C++
    RTTI). Persistence is by explicit {!insert}/{!remove}, not
    reachability, and object ids are never swizzled into pointers. *)

type oid = int
(** Persistent object id (= the chunk id the object is stored in). *)

val pp_oid : Format.formatter -> oid -> unit

exception Unknown_object of oid
exception Stale_ref
(** A ref was dereferenced after its transaction ended (paper Section 4.1:
    a checked runtime error). *)

exception Removed_in_transaction of oid

(** {1 Store} *)

type config = {
  lock_timeout : float;  (** seconds before a blocked open raises (deadlock breaking) *)
  locking : bool;  (** paper: "the application may even switch off locking" *)
  cache_budget : int;  (** object cache budget, bytes *)
}

val default_config : config

type t

val of_shard_store : ?config:config -> Tdb_chunk.Shard_store.t -> t
(** An object store over a shard router — the general constructor. Object
    ids are the router's global chunk ids; the named-roots catalog lives
    on shard 0. *)

val of_chunk_store : ?config:config -> Tdb_chunk.Chunk_store.t -> t
(** Convenience: wrap a single chunk store in a 1-shard router (pure
    passthrough, byte-compatible with the unsharded format). *)

val chunk_store : t -> Tdb_chunk.Shard_store.t
val close : t -> unit
val checkpoint : t -> unit

val cache_stats : t -> int * int * int
(** Object-cache (hits, misses, evictions). *)

val chunk_cache_stats : t -> int * int * int
(** Same counters for the verified-chunk cache one level down — the
    second tier of the two-level cache (see DESIGN.md, "Caching"). *)

val set_chunk_cache_budget : t -> int -> unit
(** Resize the underlying chunk store's verified-chunk cache at runtime
    (0 disables it); evicts immediately if over the new budget. *)

val preload : t -> oid list -> int
(** Warm the cache for a batch of objects in one parallel sweep: chunk
    reads for the objects not already cached go through
    {!Tdb_chunk.Chunk_store.read_many}, which verifies and decrypts
    misses on the domain pool. Takes no transactional locks; returns the
    number of objects actually fetched.
    @raise Unknown_object if any requested object does not exist. *)

val held_count : t -> int
(** Objects currently holding at least one transactional lock — 0 when no
    transaction is active (observable lock hygiene, e.g. after a network
    session dies). *)

val with_store : t -> (Tdb_chunk.Shard_store.t -> 'a) -> 'a
(** Run [f] on the underlying chunk store under the store's state mutex,
    serialized against every transaction — the backup/publish path (snapshot
    creation, archive emission, chain-state commits). [f] must not call
    back into this object store. *)

val ingest : t -> (Tdb_chunk.Shard_store.t -> 'a) -> 'a option
(** Replication ingest hook: run [f] (which may rewrite the store
    arbitrarily, e.g. an applied backup stream) only when no transaction
    holds a lock, then drop the object cache and reload the named-roots
    catalog, both of which [f] may have invalidated. [None] = not
    quiesced; retry later. *)

val get_root : t -> string -> oid option
(** Committed value of a named root. *)

(** {1 Transactions} (paper Figure 3) *)

type txn

type ('a, 'mode) ref_
(** A smart pointer, valid only while its transaction is active. The
    phantom ['mode] separates read-only from writable references. *)

type readonly
type writable

val begin_ : t -> txn

val deref : ('a, 'mode) ref_ -> 'a
(** @raise Stale_ref if the owning transaction has ended. *)

val insert : txn -> 'a Obj_class.t -> 'a -> oid
(** Insert a new object (exclusively locked, pinned dirty until commit). *)

val set_alloc_shard : txn -> int option -> unit
(** Pin this transaction's inserts to one shard of the underlying
    {!Tdb_chunk.Shard_store} ([None] restores the router's round-robin
    default). Collections use this so a row lands with its collection's
    other rows; a no-op over a 1-shard router. *)

val alloc_shard : txn -> int option
(** The transaction's current allocation affinity (see
    {!set_alloc_shard}). *)

val open_readonly : txn -> 'a Obj_class.t -> oid -> ('a, readonly) ref_
(** Shared lock; class-checked.
    @raise Obj_class.Type_mismatch on a wrong expected class.
    @raise Lock_manager.Lock_timeout after the configured timeout.
    @raise Unknown_object if the id has no object. *)

val open_writable : txn -> 'a Obj_class.t -> oid -> ('a, writable) ref_
(** Exclusive lock; the object joins the write set and is pickled and
    written at commit. Mutate the dereferenced value in place. *)

val update : txn -> 'a Obj_class.t -> oid -> 'a -> unit
(** Replace the stored value wholesale (exclusive lock, joins the write
    set). The network server's write primitive: the new value arrives
    complete, rather than being mutated through a ref.
    @raise Obj_class.Type_mismatch when the stored class differs. *)

val remove : txn -> oid -> unit
(** Remove the object; its id is released at commit. *)

val set_root : txn -> string -> oid option -> unit
(** Register ([Some]) or clear ([None]) a named root within the txn. *)

val root : txn -> string -> oid option
(** Root as seen by this transaction (pending updates included). *)

val commit : ?durable:bool -> txn -> unit
(** Pickle the write set and commit everything as one atomic chunk batch;
    durable by default. Releases locks and invalidates the txn's refs. *)

val abort : txn -> unit
(** Discard the write set; objects opened for writing are evicted from the
    cache (paper Section 4.2.3) and inserted ids released. *)

val with_txn : ?durable:bool -> t -> (txn -> 'a) -> 'a
(** Run [f] in a transaction; commit on return, abort on exception. *)

val durable_barrier : t -> unit
(** Promote every committed nondurable transaction to durable with one
    log force and one one-way-counter bump — the group-commit hook (see
    {!Tdb_chunk.Chunk_store.durable_barrier}). Serialized under the
    store's state mutex like every other chunk-store access. *)
