(** Run-time type witnesses (the hmap/type-identifier idiom).

    The paper's object store uses C++ RTTI to make [Ref<T>] construction
    type-safe ("the attempt to construct Ref<MyObject> would fail with a
    checked runtime error", Section 4.1). In OCaml we get the same guarantee
    from extensible-GADT type identifiers: every registered class owns a
    unique witness, and opening an object checks witness equality before
    exposing the value at the expected type. *)

type (_, _) eq = Eq : ('a, 'a) eq

module Tid = struct
  type _ t = ..
end

module type Tid = sig
  type t
  type _ Tid.t += Tid : t Tid.t
end

type 'a t = (module Tid with type t = 'a)

let create (type s) () : s t =
  (module struct
    type t = s
    type _ Tid.t += Tid : t Tid.t
  end)

let eq : type r s. r t -> s t -> (r, s) eq option =
 fun r s ->
  let module R = (val r) in
  let module S = (val s) in
  match R.Tid with S.Tid -> Some Eq | _ -> None
