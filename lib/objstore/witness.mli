(** Run-time type witnesses (the extensible-GADT type-identifier idiom).
    Every registered class owns a unique witness; opening an object checks
    witness equality before exposing the value at the expected type — the
    OCaml replacement for the paper's C++ RTTI-checked Refs. *)

type (_, _) eq = Eq : ('a, 'a) eq

type 'a t

val create : unit -> 'a t
val eq : 'a t -> 'b t -> ('a, 'b) eq option
