(** The object cache (paper Section 4.2.2): an LRU cache of unpickled
    objects indexed by object id.

    Objects enter the cache decrypted, validated, unpickled and
    type-checked, "ready for direct access by the application". Objects
    referenced by live transactions are pinned (reference-counted); dirty
    objects are pinned until their transaction ends — the no-steal policy.
    When cumulative size exceeds the budget, least-recently-used unpinned
    entries are evicted. *)

type entry = {
  oid : int;
  mutable value : Obj_class.packed_value;
  mutable size : int; (* last known pickled size, for budgeting *)
  mutable pins : int;
  mutable prev : entry option; (* towards MRU *)
  mutable next : entry option; (* towards LRU *)
}

type t = {
  table : (int, entry) Hashtbl.t;
  mutable mru : entry option;
  mutable lru : entry option;
  mutable total_size : int;
  mutable budget : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ~(budget : int) : t =
  { table = Hashtbl.create 256; mru = None; lru = None; total_size = 0; budget; hits = 0; misses = 0; evictions = 0 }

let unlink t e =
  (match e.prev with Some p -> p.next <- e.next | None -> t.mru <- e.next);
  (match e.next with Some n -> n.prev <- e.prev | None -> t.lru <- e.prev);
  e.prev <- None;
  e.next <- None

let push_mru t e =
  e.next <- t.mru;
  e.prev <- None;
  (match t.mru with Some m -> m.prev <- Some e | None -> t.lru <- Some e);
  t.mru <- Some e

let touch t e =
  unlink t e;
  push_mru t e

let evict_until_within t =
  let rec go cursor =
    if t.total_size > t.budget then
      match cursor with
      | None -> ()
      | Some e ->
          let prev = e.prev in
          if e.pins = 0 then begin
            unlink t e;
            Hashtbl.remove t.table e.oid;
            t.total_size <- t.total_size - e.size;
            t.evictions <- t.evictions + 1
          end;
          go prev
  in
  go t.lru

let find t (oid : int) : entry option =
  match Hashtbl.find_opt t.table oid with
  | Some e ->
      t.hits <- t.hits + 1;
      touch t e;
      Some e
  | None ->
      t.misses <- t.misses + 1;
      None

(** Insert or replace; returns the entry so callers can pin it. *)
let put t (oid : int) (value : Obj_class.packed_value) ~(size : int) : entry =
  match Hashtbl.find_opt t.table oid with
  | Some e ->
      t.total_size <- t.total_size - e.size + size;
      e.value <- value;
      e.size <- size;
      touch t e;
      evict_until_within t;
      e
  | None ->
      let e = { oid; value; size; pins = 0; prev = None; next = None } in
      Hashtbl.replace t.table oid e;
      push_mru t e;
      t.total_size <- t.total_size + size;
      evict_until_within t;
      e

let pin (e : entry) = e.pins <- e.pins + 1

let unpin t (e : entry) =
  if e.pins <= 0 then invalid_arg "Cache.unpin: not pinned";
  e.pins <- e.pins - 1;
  if t.total_size > t.budget then evict_until_within t

(** Drop an entry outright (transaction abort evicts objects opened for
    writing, paper Section 4.2.3). *)
let remove t (oid : int) : unit =
  match Hashtbl.find_opt t.table oid with
  | None -> ()
  | Some e ->
      unlink t e;
      Hashtbl.remove t.table e.oid;
      t.total_size <- t.total_size - e.size

let update_size t (e : entry) ~(size : int) =
  t.total_size <- t.total_size - e.size + size;
  e.size <- size;
  evict_until_within t

(** Drop every entry (replication ingest rewrites chunks underneath the
    cache, so nothing cached can be trusted afterwards). Callers must
    ensure no entry is pinned — a pinned entry here would mean a live
    transaction spans the ingest, which the quiesce check forbids. *)
let drop_all t : unit =
  Hashtbl.iter (fun _ e -> if e.pins > 0 then invalid_arg "Cache.drop_all: pinned entry") t.table;
  Hashtbl.reset t.table;
  t.mru <- None;
  t.lru <- None;
  t.total_size <- 0

let stats t = (t.hits, t.misses, t.evictions)
let resident t = Hashtbl.length t.table
let total_size t = t.total_size
let set_budget t b =
  t.budget <- b;
  evict_until_within t
