(** Client library for the TDB network service.

    A thin, synchronous RPC layer over {!Proto}: one request in flight per
    connection (a mutex serializes callers), typed payloads pickled with
    the same {!Tdb_objstore.Obj_class} registry the server dispatches on,
    keys in {!Tdb_collection.Gkey} canonical form. Server-side errors
    surface as {!Server_error} carrying the wire tag — [lock_timeout]
    means the server already aborted the transaction and the client
    should retry a fresh one. *)

open Tdb_objstore
open Tdb_collection
module P = Tdb_pickle.Pickle

exception Server_error of { tag : string; msg : string }
exception Unexpected_response of string

type t = {
  fd : Unix.file_descr;
  mu : Mutex.t;
  max_frame : int;
  mutable closed : bool;
}

let rpc (c : t) (req : Proto.request) : Proto.response =
  Mutex.lock c.mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock c.mu)
    (fun () ->
      if c.closed then raise (Unexpected_response "connection closed");
      Proto.write_frame c.fd (Proto.encode_request req);
      match Proto.decode_response (Proto.read_frame ~max_frame:c.max_frame c.fd) with
      | Proto.Error_ { tag; msg } -> raise (Server_error { tag; msg })
      | resp -> resp)

let unexpected what = raise (Unexpected_response ("expected " ^ what))
let expect_unit = function Proto.Ok_unit -> () | _ -> unexpected "Ok_unit"
let expect_oid = function Proto.Ok_oid oid -> oid | _ -> unexpected "Ok_oid"
let expect_data = function Proto.Ok_data d -> d | _ -> unexpected "Ok_data"

let connect ?(max_frame = Proto.default_max_frame) (addr : Server.addr) : t =
  let fd =
    match addr with
    | Server.Unix_path path ->
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_UNIX path);
        fd
    | Server.Tcp (host, port) ->
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
        fd
  in
  let c = { fd; mu = Mutex.create (); max_frame; closed = false } in
  match rpc c (Proto.Hello { r_magic = Proto.magic; r_version = Proto.version }) with
  | Proto.Hello_ok _ -> c
  | _ ->
      Unix.close fd;
      unexpected "Hello_ok"

let close (c : t) : unit =
  if not c.closed then begin
    (match rpc c Proto.Bye with
    | _ -> ()
    | exception Server_error _ -> ()
    | exception Unexpected_response _ -> ()
    | exception End_of_file -> ()
    | exception Proto.Proto_error _ -> ()
    | exception Unix.Unix_error (_, _, _) -> ());
    c.closed <- true;
    match Unix.close c.fd with () -> () | exception Unix.Unix_error (_, _, _) -> ()
  end

(** Drop the connection without saying goodbye — from the server's point
    of view the client died; its transaction must be aborted and its
    locks released. (Exists so tests can exercise exactly that path.) *)
let disconnect_abruptly (c : t) : unit =
  if not c.closed then begin
    c.closed <- true;
    match Unix.close c.fd with () -> () | exception Unix.Unix_error (_, _, _) -> ()
  end

(* --- transactions --- *)

let begin_ (c : t) : unit = expect_unit (rpc c Proto.Begin)
let commit ?(durable = true) (c : t) : unit = expect_unit (rpc c (Proto.Commit { durable }))
let abort (c : t) : unit = expect_unit (rpc c Proto.Abort)

let with_txn ?durable (c : t) (f : unit -> 'a) : 'a =
  begin_ c;
  match f () with
  | v ->
      commit ?durable c;
      v
  | exception e ->
      (match abort c with
      | () -> ()
      | exception Server_error _ -> () (* e.g. lock_timeout already aborted it *)
      | exception Unix.Unix_error (_, _, _) -> ()
      | exception End_of_file -> ());
      raise e

(* --- roots and typed objects --- *)

let get_root (c : t) (name : string) : int option =
  match rpc c (Proto.Get_root name) with Proto.Ok_root r -> r | _ -> unexpected "Ok_root"

let set_root (c : t) (name : string) (oid : int option) : unit =
  expect_unit (rpc c (Proto.Set_root (name, oid)))

let insert (c : t) (cls : 'a Obj_class.t) (v : 'a) : int =
  expect_oid (rpc c (Proto.Insert { data = Obj_class.pickle_value cls v }))

let read (c : t) (cls : 'a Obj_class.t) (oid : int) : 'a =
  let data = expect_data (rpc c (Proto.Read { cls = cls.Obj_class.name; oid })) in
  Obj_class.cast cls (Obj_class.unpickle_value data)

let update (c : t) (cls : 'a Obj_class.t) (oid : int) (v : 'a) : unit =
  expect_unit (rpc c (Proto.Update { oid; data = Obj_class.pickle_value cls v }))

let remove (c : t) (oid : int) : unit = expect_unit (rpc c (Proto.Remove { oid }))

(* --- collections --- *)

let coll_insert (c : t) ~coll (cls : 'a Obj_class.t) (v : 'a) : int =
  expect_oid (rpc c (Proto.Coll_insert { coll; data = Obj_class.pickle_value cls v }))

let coll_find (c : t) ~coll ~index (key_ty : 'k Gkey.t) (key : 'k) (cls : 'a Obj_class.t) :
    (int * 'a) option =
  match rpc c (Proto.Coll_find { coll; index; key = Gkey.to_bytes key_ty key }) with
  | Proto.Ok_found None -> None
  | Proto.Ok_found (Some (oid, data)) -> Some (oid, Obj_class.cast cls (Obj_class.unpickle_value data))
  | _ -> unexpected "Ok_found"

let coll_scan (c : t) ~coll ~index ?(limit = 0) ?min_key ?max_key (key_ty : 'k Gkey.t)
    (cls : 'a Obj_class.t) : (int * 'a) list =
  let enc k = Gkey.to_bytes key_ty k in
  match
    rpc c
      (Proto.Coll_scan
         { coll; index; min = Option.map enc min_key; max = Option.map enc max_key; limit })
  with
  | Proto.Ok_list l ->
      List.map (fun (oid, data) -> (oid, Obj_class.cast cls (Obj_class.unpickle_value data))) l
  | _ -> unexpected "Ok_list"

let coll_mutate (c : t) ~coll ~index ~mutation (key_ty : 'k Gkey.t) (key : 'k)
    (cls : 'a Obj_class.t) ~(arg : P.writer -> unit) : 'a =
  let w = P.writer () in
  arg w;
  let data =
    expect_data
      (rpc c
         (Proto.Coll_mutate
            { coll; index; key = Gkey.to_bytes key_ty key; mutation; arg = P.contents w }))
  in
  Obj_class.cast cls (Obj_class.unpickle_value data)

let coll_size (c : t) ~coll : int =
  match rpc c (Proto.Coll_size { coll }) with Proto.Ok_int n -> n | _ -> unexpected "Ok_int"

(* --- introspection --- *)

let stats (c : t) : Proto.stats =
  match rpc c Proto.Stats with Proto.Ok_stats s -> s | _ -> unexpected "Ok_stats"

(* --- archive --- *)

let list_backups (c : t) : (int * string) list =
  match rpc c Proto.List_backups with Proto.Ok_list l -> l | _ -> unexpected "Ok_list"

let fetch_backup (c : t) ~(name : string) : string =
  expect_data (rpc c (Proto.Fetch_backup { name }))
