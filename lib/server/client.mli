(** Client library for the TDB network service: a synchronous RPC layer
    over {!Proto}. One request in flight per connection (callers are
    serialized); typed payloads go through the {!Tdb_objstore.Obj_class}
    registry, so client and server must register the same classes. *)

exception Server_error of { tag : string; msg : string }
(** A wire-level error from the server. Notable tags: ["lock_timeout"]
    (the server aborted the transaction to break a deadlock — retry a
    fresh one), ["not_exposed"], ["type_mismatch"], ["no_txn"],
    ["not_found"], ["tamper"]. *)

exception Unexpected_response of string
(** The server answered with the wrong response shape (protocol bug). *)

type t

val connect : ?max_frame:int -> Server.addr -> t
(** Connect and perform the version handshake.
    @raise Server_error on a version refusal. *)

val close : t -> unit
(** Polite goodbye, then close. Idempotent. *)

val disconnect_abruptly : t -> unit
(** Drop the socket without a goodbye — the server must abort the
    session's transaction and release its locks. For tests. *)

(** {1 Transactions} — at most one open per connection. *)

val begin_ : t -> unit
val commit : ?durable:bool -> t -> unit
val abort : t -> unit

val with_txn : ?durable:bool -> t -> (unit -> 'a) -> 'a
(** Begin, run, commit; abort on exception (tolerating the server having
    already aborted, as after a lock timeout). *)

(** {1 Roots and typed objects} *)

val get_root : t -> string -> int option
val set_root : t -> string -> int option -> unit
val insert : t -> 'a Tdb_objstore.Obj_class.t -> 'a -> int
val read : t -> 'a Tdb_objstore.Obj_class.t -> int -> 'a
val update : t -> 'a Tdb_objstore.Obj_class.t -> int -> 'a -> unit
val remove : t -> int -> unit

(** {1 Collections} *)

val coll_insert : t -> coll:string -> 'a Tdb_objstore.Obj_class.t -> 'a -> int

val coll_find :
  t -> coll:string -> index:string -> 'k Tdb_collection.Gkey.t -> 'k -> 'a Tdb_objstore.Obj_class.t ->
  (int * 'a) option

val coll_scan :
  t ->
  coll:string ->
  index:string ->
  ?limit:int ->
  ?min_key:'k ->
  ?max_key:'k ->
  'k Tdb_collection.Gkey.t ->
  'a Tdb_objstore.Obj_class.t ->
  (int * 'a) list
(** [limit = 0] means unbounded; [min_key]/[max_key] select a range scan
    (B-tree indexes only). *)

val coll_mutate :
  t ->
  coll:string ->
  index:string ->
  mutation:string ->
  'k Tdb_collection.Gkey.t ->
  'k ->
  'a Tdb_objstore.Obj_class.t ->
  arg:(Tdb_pickle.Pickle.writer -> unit) ->
  'a
(** Invoke a server-registered named mutation on the object with this key
    and return the updated object — a read-modify-write in one round
    trip, executed under the object's exclusive lock server-side. *)

val coll_size : t -> coll:string -> int

(** {1 Introspection} *)

val stats : t -> Proto.stats

(** {1 Archive} — remote access to the server's backup archive. *)

val list_backups : t -> (int * string) list
(** (backup id, archive stream name) pairs in id order. Raises
    {!Server_error} with tag ["no_archive"] when the server has no
    archive attached. *)

val fetch_backup : t -> name:string -> string
(** One archive stream by name, as listed by {!list_backups}. The stream
    is an opaque sealed backup frame: it is verified and unsealed locally
    by {!Tdb_backup.Backup_store} under the device secret — a server (or
    wire) that tampers with it is detected at restore time, not trusted. *)
