(** Group commit: coalesce concurrent sessions' durable commits into one
    chunk-store durable barrier — one log force, one one-way-counter bump,
    arbitrarily many commits.

    Usage: perform the transaction's {e nondurable} commit first (its
    atomicity is settled at that point; the chunk store guarantees it
    survives once a later barrier lands), then call {!run}, which blocks
    until a barrier covers the commit. The ticket protocol guarantees a
    barrier only claims commits that were in the log before it started. *)

type t

val create : barrier:(unit -> unit) -> t
(** [barrier] must promote every committed nondurable transaction to
    durable (e.g. {!Tdb_objstore.Object_store.durable_barrier}). It is
    called from one caller's thread at a time, never concurrently. *)

val run : t -> unit
(** Block until the caller's (already landed) nondurable commit is covered
    by a durable barrier, leading one if none is running. Re-raises the
    barrier's exception — and once a barrier has raised, the coordinator
    is poisoned and every subsequent call re-raises it (the store's
    durability story is broken; no caller gets a false claim). *)

type stats = { gc_batches : int  (** barriers run *); gc_coalesced : int  (** commits covered *) }

val stats : t -> stats
