(** Wire protocol for the TDB network service.

    Framing is a 4-byte big-endian length prefix followed by a payload
    encoded with {!Tdb_pickle.Pickle} — the same combinators the stores
    use, never [Marshal] (the wire crosses a trust boundary; lint rule R3
    enforces this mechanically). A connection opens with a [Hello]
    carrying the magic and protocol version; the server refuses anything
    it does not speak.

    Typed object payloads travel in {!Tdb_objstore.Obj_class} packed form
    (class name + version embedded), so both ends dispatch through their
    class registries and a class mismatch is detected, not silently
    mis-decoded. Index keys travel as {!Tdb_collection.Gkey} canonical
    bytes. *)

exception Proto_error of string
(** Malformed frame, unknown opcode, version mismatch, or oversized
    payload. *)

let version = 6
let magic = "TDB\001"

let default_max_frame = 4 * 1024 * 1024
(** Frames larger than this are refused outright — a length prefix is
    attacker-supplied input and must not size an allocation unchecked. *)

module P = Tdb_pickle.Pickle

(* ------------------------------------------------------------------ *)
(* Messages                                                            *)
(* ------------------------------------------------------------------ *)

type request =
  | Hello of { r_magic : string; r_version : int }
  | Begin
  | Commit of { durable : bool }
  | Abort
  | Get_root of string
  | Set_root of string * int option
  | Insert of { data : string }  (** packed value; returns the new oid *)
  | Read of { cls : string; oid : int }  (** class-checked read *)
  | Update of { oid : int; data : string }  (** packed value replaces state *)
  | Remove of { oid : int }
  | Coll_insert of { coll : string; data : string }
  | Coll_find of { coll : string; index : string; key : string }
  | Coll_scan of { coll : string; index : string; min : string option; max : string option; limit : int }
  | Coll_mutate of { coll : string; index : string; key : string; mutation : string; arg : string }
  | Coll_size of { coll : string }
  | Stats
  | Bye
  | Subscribe of { r_last_id : int; r_chain : string }
      (** switch the connection to publish mode: stream archive frames
          starting after the subscriber's chain position (its persisted
          backup chain state). The publisher treats both fields as
          untrusted hints — frames are verified by the subscriber. *)
  | List_backups  (** archive index: (backup id, archive name) pairs *)
  | Fetch_backup of { name : string }
      (** one archive stream by name — an opaque sealed backup frame the
          client verifies and unseals locally under the device secret *)

type stats = {
  s_sessions : int;  (** sessions currently connected *)
  s_sessions_total : int;
  s_committed : int;  (** transactions committed through the service *)
  s_aborted : int;  (** transactions aborted (explicit, timeout or disconnect) *)
  s_commits : int;  (** chunk-store commits (all kinds) *)
  s_durable_commits : int;  (** chunk-store durable commits (incl. barriers) *)
  s_counter : int64;  (** one-way counter value *)
  s_gc_batches : int;  (** group-commit barriers run *)
  s_gc_coalesced : int;  (** durable commits absorbed into those barriers *)
  s_cache_hits : int;  (** verified-chunk cache hits (reads served decrypted) *)
  s_cache_misses : int;  (** cache misses (full fetch + decrypt + verify) *)
  s_cache_evictions : int;  (** entries evicted under budget pressure *)
  s_domains : int;  (** seal/unseal pipeline width the store runs at *)
  s_par_batches : int;  (** batches fanned out over the domain pool *)
  s_par_tasks : int;  (** items executed through the pool *)
  s_par_wait_us : int;  (** coordinator µs parked waiting on pool workers *)
  s_backup_last_id : int;  (** backup/replication chain position (0 = none) *)
  s_backup_base_snapshot : int;  (** snapshot the next incremental diffs against; -1 = none *)
  s_backup_chain : string;  (** current backup hash-chain value ("" = never attached) *)
  s_shards : int;  (** shard width of the chunk store (1 = unsharded) *)
  s_cross_commits : int;  (** commits that took the cross-shard 2PC path *)
  s_shard_counters : int64 list;  (** per-shard one-way counter values *)
  s_shard_seqs : int list;  (** per-shard commit sequence numbers *)
  s_shard_sizes : int list;  (** per-shard store sizes in bytes (log tail) *)
  s_shard_barriers : int list;  (** per-shard staged group-commit barriers run *)
  s_clean_passes : int;  (** cleaning passes run (all shards) *)
  s_segments_cleaned : int;  (** segments reclaimed by the cleaner *)
  s_bytes_relocated : int;  (** chunk ciphertext bytes the cleaner recopied *)
  s_bytes_data : int;  (** chunk payload bytes appended (write-amp denominator) *)
  s_tiers : int;  (** configured cleaning generations (1 = single population) *)
  s_tier_segments : int list;  (** live-segment count per cleaning tier, summed over shards *)
}

type response =
  | Hello_ok of { a_version : int }
  | Ok_unit
  | Ok_oid of int
  | Ok_data of string
  | Ok_found of (int * string) option
  | Ok_list of (int * string) list
  | Ok_root of int option
  | Ok_int of int
  | Ok_stats of stats
  | Error_ of { tag : string; msg : string }
  | Rep_frame of { f_name : string; f_stream : string }
      (** one archive stream (a sealed, MAC'd backup frame, opaque here) *)
  | Rep_heartbeat of { h_last_id : int; h_seq : int; h_counter : int64 }
      (** publisher position: newest archive id, the store's commit
          sequence and one-way counter — what follower lag is measured
          against *)

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

let encode_request (req : request) : string =
  let w = P.writer () in
  (match req with
  | Hello { r_magic; r_version } ->
      P.byte w 0;
      P.string w r_magic;
      P.uint w r_version
  | Begin -> P.byte w 1
  | Commit { durable } ->
      P.byte w 2;
      P.bool w durable
  | Abort -> P.byte w 3
  | Get_root name ->
      P.byte w 4;
      P.string w name
  | Set_root (name, oid) ->
      P.byte w 5;
      P.string w name;
      P.option w P.int oid
  | Insert { data } ->
      P.byte w 6;
      P.string w data
  | Read { cls; oid } ->
      P.byte w 7;
      P.string w cls;
      P.int w oid
  | Update { oid; data } ->
      P.byte w 8;
      P.int w oid;
      P.string w data
  | Remove { oid } ->
      P.byte w 9;
      P.int w oid
  | Coll_insert { coll; data } ->
      P.byte w 10;
      P.string w coll;
      P.string w data
  | Coll_find { coll; index; key } ->
      P.byte w 11;
      P.string w coll;
      P.string w index;
      P.string w key
  | Coll_scan { coll; index; min; max; limit } ->
      P.byte w 12;
      P.string w coll;
      P.string w index;
      P.option w P.string min;
      P.option w P.string max;
      P.uint w limit
  | Coll_mutate { coll; index; key; mutation; arg } ->
      P.byte w 13;
      P.string w coll;
      P.string w index;
      P.string w key;
      P.string w mutation;
      P.string w arg
  | Coll_size { coll } ->
      P.byte w 14;
      P.string w coll
  | Stats -> P.byte w 15
  | Bye -> P.byte w 16
  | Subscribe { r_last_id; r_chain } ->
      P.byte w 17;
      P.uint w r_last_id;
      P.string w r_chain
  | List_backups -> P.byte w 18
  | Fetch_backup { name } ->
      P.byte w 19;
      P.string w name);
  P.contents w

let decode_request (payload : string) : request =
  let r = P.reader payload in
  let req =
    match P.read_byte r with
    | 0 ->
        let r_magic = P.read_string r in
        let r_version = P.read_uint r in
        Hello { r_magic; r_version }
    | 1 -> Begin
    | 2 -> Commit { durable = P.read_bool r }
    | 3 -> Abort
    | 4 -> Get_root (P.read_string r)
    | 5 ->
        let name = P.read_string r in
        let oid = P.read_option r P.read_int in
        Set_root (name, oid)
    | 6 -> Insert { data = P.read_string r }
    | 7 ->
        let cls = P.read_string r in
        let oid = P.read_int r in
        Read { cls; oid }
    | 8 ->
        let oid = P.read_int r in
        let data = P.read_string r in
        Update { oid; data }
    | 9 -> Remove { oid = P.read_int r }
    | 10 ->
        let coll = P.read_string r in
        let data = P.read_string r in
        Coll_insert { coll; data }
    | 11 ->
        let coll = P.read_string r in
        let index = P.read_string r in
        let key = P.read_string r in
        Coll_find { coll; index; key }
    | 12 ->
        let coll = P.read_string r in
        let index = P.read_string r in
        let min = P.read_option r P.read_string in
        let max = P.read_option r P.read_string in
        let limit = P.read_uint r in
        Coll_scan { coll; index; min; max; limit }
    | 13 ->
        let coll = P.read_string r in
        let index = P.read_string r in
        let key = P.read_string r in
        let mutation = P.read_string r in
        let arg = P.read_string r in
        Coll_mutate { coll; index; key; mutation; arg }
    | 14 -> Coll_size { coll = P.read_string r }
    | 15 -> Stats
    | 16 -> Bye
    | 17 ->
        let r_last_id = P.read_uint r in
        let r_chain = P.read_string r in
        Subscribe { r_last_id; r_chain }
    | 18 -> List_backups
    | 19 -> Fetch_backup { name = P.read_string r }
    | op -> raise (Proto_error (Printf.sprintf "unknown request opcode %d" op))
  in
  P.expect_end r;
  req

let encode_response (resp : response) : string =
  let w = P.writer () in
  (match resp with
  | Hello_ok { a_version } ->
      P.byte w 0;
      P.uint w a_version
  | Ok_unit -> P.byte w 1
  | Ok_oid oid ->
      P.byte w 2;
      P.int w oid
  | Ok_data data ->
      P.byte w 3;
      P.string w data
  | Ok_found found ->
      P.byte w 4;
      P.option w (fun w p -> P.pair w P.int P.string p) found
  | Ok_list l ->
      P.byte w 5;
      P.list w (fun w p -> P.pair w P.int P.string p) l
  | Ok_root oid ->
      P.byte w 6;
      P.option w P.int oid
  | Ok_int n ->
      P.byte w 7;
      P.int w n
  | Ok_stats s ->
      P.byte w 8;
      P.uint w s.s_sessions;
      P.uint w s.s_sessions_total;
      P.uint w s.s_committed;
      P.uint w s.s_aborted;
      P.uint w s.s_commits;
      P.uint w s.s_durable_commits;
      P.int64 w s.s_counter;
      P.uint w s.s_gc_batches;
      P.uint w s.s_gc_coalesced;
      P.uint w s.s_cache_hits;
      P.uint w s.s_cache_misses;
      P.uint w s.s_cache_evictions;
      P.uint w s.s_domains;
      P.uint w s.s_par_batches;
      P.uint w s.s_par_tasks;
      P.uint w s.s_par_wait_us;
      P.uint w s.s_backup_last_id;
      P.int w s.s_backup_base_snapshot;
      P.string w s.s_backup_chain;
      P.uint w s.s_shards;
      P.uint w s.s_cross_commits;
      P.list w P.int64 s.s_shard_counters;
      P.list w P.uint s.s_shard_seqs;
      P.list w P.uint s.s_shard_sizes;
      P.list w P.uint s.s_shard_barriers;
      P.uint w s.s_clean_passes;
      P.uint w s.s_segments_cleaned;
      P.uint w s.s_bytes_relocated;
      P.uint w s.s_bytes_data;
      P.uint w s.s_tiers;
      P.list w P.uint s.s_tier_segments
  | Error_ { tag; msg } ->
      P.byte w 9;
      P.string w tag;
      P.string w msg
  | Rep_frame { f_name; f_stream } ->
      P.byte w 10;
      P.string w f_name;
      P.string w f_stream
  | Rep_heartbeat { h_last_id; h_seq; h_counter } ->
      P.byte w 11;
      P.uint w h_last_id;
      P.uint w h_seq;
      P.int64 w h_counter);
  P.contents w

let decode_response (payload : string) : response =
  let r = P.reader payload in
  let resp =
    match P.read_byte r with
    | 0 -> Hello_ok { a_version = P.read_uint r }
    | 1 -> Ok_unit
    | 2 -> Ok_oid (P.read_int r)
    | 3 -> Ok_data (P.read_string r)
    | 4 -> Ok_found (P.read_option r (fun r -> P.read_pair r P.read_int P.read_string))
    | 5 -> Ok_list (P.read_list r (fun r -> P.read_pair r P.read_int P.read_string))
    | 6 -> Ok_root (P.read_option r P.read_int)
    | 7 -> Ok_int (P.read_int r)
    | 8 ->
        let s_sessions = P.read_uint r in
        let s_sessions_total = P.read_uint r in
        let s_committed = P.read_uint r in
        let s_aborted = P.read_uint r in
        let s_commits = P.read_uint r in
        let s_durable_commits = P.read_uint r in
        let s_counter = P.read_int64 r in
        let s_gc_batches = P.read_uint r in
        let s_gc_coalesced = P.read_uint r in
        let s_cache_hits = P.read_uint r in
        let s_cache_misses = P.read_uint r in
        let s_cache_evictions = P.read_uint r in
        let s_domains = P.read_uint r in
        let s_par_batches = P.read_uint r in
        let s_par_tasks = P.read_uint r in
        let s_par_wait_us = P.read_uint r in
        let s_backup_last_id = P.read_uint r in
        let s_backup_base_snapshot = P.read_int r in
        let s_backup_chain = P.read_string r in
        let s_shards = P.read_uint r in
        let s_cross_commits = P.read_uint r in
        let s_shard_counters = P.read_list r P.read_int64 in
        let s_shard_seqs = P.read_list r P.read_uint in
        let s_shard_sizes = P.read_list r P.read_uint in
        let s_shard_barriers = P.read_list r P.read_uint in
        let s_clean_passes = P.read_uint r in
        let s_segments_cleaned = P.read_uint r in
        let s_bytes_relocated = P.read_uint r in
        let s_bytes_data = P.read_uint r in
        let s_tiers = P.read_uint r in
        let s_tier_segments = P.read_list r P.read_uint in
        Ok_stats
          {
            s_sessions;
            s_sessions_total;
            s_committed;
            s_aborted;
            s_commits;
            s_durable_commits;
            s_counter;
            s_gc_batches;
            s_gc_coalesced;
            s_cache_hits;
            s_cache_misses;
            s_cache_evictions;
            s_domains;
            s_par_batches;
            s_par_tasks;
            s_par_wait_us;
            s_backup_last_id;
            s_backup_base_snapshot;
            s_backup_chain;
            s_shards;
            s_cross_commits;
            s_shard_counters;
            s_shard_seqs;
            s_shard_sizes;
            s_shard_barriers;
            s_clean_passes;
            s_segments_cleaned;
            s_bytes_relocated;
            s_bytes_data;
            s_tiers;
            s_tier_segments;
          }
    | 9 ->
        let tag = P.read_string r in
        let msg = P.read_string r in
        Error_ { tag; msg }
    | 10 ->
        let f_name = P.read_string r in
        let f_stream = P.read_string r in
        Rep_frame { f_name; f_stream }
    | 11 ->
        let h_last_id = P.read_uint r in
        let h_seq = P.read_uint r in
        let h_counter = P.read_int64 r in
        Rep_heartbeat { h_last_id; h_seq; h_counter }
    | op -> raise (Proto_error (Printf.sprintf "unknown response opcode %d" op))
  in
  P.expect_end r;
  resp

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)
(* ------------------------------------------------------------------ *)

let rec write_all fd b off len =
  if len > 0 then begin
    let n = Unix.write fd b off len in
    write_all fd b (off + n) (len - n)
  end

let write_frame (fd : Unix.file_descr) (payload : string) : unit =
  let n = String.length payload in
  if n > default_max_frame then raise (Proto_error "outgoing frame too large");
  let b = Bytes.create (4 + n) in
  Bytes.set_int32_be b 0 (Int32.of_int n);
  Bytes.blit_string payload 0 b 4 n;
  write_all fd b 0 (4 + n)

(* [at_start] distinguishes a clean disconnect (EOF on a frame boundary,
   raised as [End_of_file]) from a torn frame (a protocol error). *)
let read_exact fd n ~at_start =
  let b = Bytes.create n in
  let rec go off =
    if off < n then begin
      let r = Unix.read fd b off (n - off) in
      if Int.equal r 0 then
        if at_start && Int.equal off 0 then raise End_of_file
        else raise (Proto_error "connection closed mid-frame");
      go (off + r)
    end
  in
  go 0;
  b

let read_frame ?(max_frame = default_max_frame) (fd : Unix.file_descr) : string =
  let hdr = read_exact fd 4 ~at_start:true in
  let len = Int32.to_int (Bytes.get_int32_be hdr 0) in
  if len < 0 || len > max_frame then
    raise (Proto_error (Printf.sprintf "frame length %d exceeds limit %d" len max_frame));
  Bytes.to_string (read_exact fd len ~at_start:false)
