(** The TDB network service: a threaded server exposing an embedded
    object/collection store over Unix-domain or TCP sockets.

    One session per connection, one thread per session, at most one open
    transaction per session. Sessions are aborted on disconnect and on
    idle timeout, so a dead client never strands 2PL locks; a lock
    timeout aborts the session's transaction before the error reaches the
    client (the timeout is a deadlock breaker — keeping the deadlocked
    transaction's locks would break nothing). With [group_commit] on,
    durable commits land nondurably and are promoted by a shared
    {!Group_commit} barrier.

    Only explicitly exposed classes and collections are reachable over
    the wire; collection mutations run server-side as registered named
    closures, so a read-modify-write costs one round trip and never holds
    a shared lock while waiting for the client. *)

type addr =
  | Unix_path of string  (** Unix-domain socket at this path (unlinked first) *)
  | Tcp of string * int  (** numeric host, port; port 0 picks one — see {!port} *)

type config = {
  group_commit : bool;  (** coalesce durable commits into shared barriers *)
  idle_timeout : float;  (** seconds of silence before a session is dropped; 0 = never *)
  max_frame : int;
  read_only : bool;
      (** replication-follower mode: writes and durable commits are
          refused with a typed ["read_only"] error; reads serve the
          follower's restored snapshot (nondurable commit stays allowed so
          read sessions end cleanly) *)
  publish_poll : float;  (** publisher idle poll interval, seconds *)
}

val default_config : config
(** group commit on, no idle timeout, {!Proto.default_max_frame},
    writable, 50 ms publish poll. *)

type t

val create :
  ?config:config -> ?backups:Tdb_backup.Backup_store.t -> Tdb_objstore.Object_store.t -> addr -> t
(** Bind and listen. The server does not own the store's lifecycle: close
    it yourself after {!stop}.

    [backups] attaches an archive: [Subscribe] connections become publish
    feeds streaming its frames in backup-id order (heartbeats carry the
    store's commit sequence and counter), and, when
    {!Tdb_chunk.Config.t.replica_interval_commits} [> 0], every that-many
    durable commits auto-emit an incremental backup. Without [backups],
    [Subscribe] is refused with a typed ["no_archive"] error. *)

val port : t -> int
(** The bound TCP port (use with [Tcp (host, 0)]).
    @raise Invalid_argument on a Unix-domain server. *)

val expose_class : t -> 'a Tdb_objstore.Obj_class.t -> unit
(** Allow remote typed reads/writes/inserts of this class. *)

val expose_collection :
  t ->
  name:string ->
  schema:'a Tdb_objstore.Obj_class.t ->
  indexers:'a Tdb_collection.Indexer.generic list ->
  ?mutations:(string * ('a -> Tdb_pickle.Pickle.reader -> unit)) list ->
  unit ->
  unit
(** Allow remote access to a collection (created on first touch if the
    database does not have it yet; opened with [indexers] otherwise).
    [mutations] are the named in-place updates remote peers may invoke;
    each receives the object and a reader over the client-supplied
    argument bytes. Exposing a collection also exposes its schema class. *)

val start : t -> unit
(** Spawn the accept loop in a background thread. *)

val serve : t -> unit
(** Run the accept loop in the calling thread (blocks until {!stop}). *)

val stop : ?timeout:float -> t -> unit
(** Stop accepting, shut down live sessions (their transactions abort),
    and wait up to [timeout] seconds for session threads to drain. *)
