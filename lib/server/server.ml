(** The TDB network service: a threaded server exposing an embedded
    object/collection store over Unix-domain or TCP sockets.

    One session per connection, one thread per session, at most one open
    transaction per session. The transported TDB is the embedded one —
    the object store's single state mutex still serializes store access
    (paper Section 4.2.3); what the server adds is the session discipline
    around it:

    - {b abort on disconnect}: a dead client's transaction is aborted the
      moment its socket closes, so it can never strand 2PL locks;
    - {b idle timeouts}: a session silent longer than the configured
      timeout is aborted and closed — same rationale;
    - {b lock-timeout aborts}: a {!Tdb_objstore.Lock_manager.Lock_timeout}
      aborts the session's transaction before the error is reported, so
      the deadlock the timeout broke is actually resolved (the client
      simply retries a fresh transaction);
    - {b group commit}: when enabled, durable commits land nondurably and
      are promoted by a shared {!Group_commit} barrier — one log force and
      one counter bump cover every session that commits in the window.

    Only {e exposed} classes and collections are reachable over the wire:
    the server dispatches through explicit registries populated by
    {!expose_class} / {!expose_collection}, never through the ambient
    class registry, so a remote peer cannot touch types the operator did
    not opt in. Collection mutations run server-side as registered named
    closures — the client sends a mutation name plus a pickled argument
    and gets the updated object back, one round trip, no shared-lock
    upgrade window. *)

open Tdb_objstore
open Tdb_collection
module P = Tdb_pickle.Pickle

type addr = Unix_path of string | Tcp of string * int

type config = {
  group_commit : bool;  (** coalesce durable commits into shared barriers *)
  idle_timeout : float;  (** seconds of silence before a session is dropped; 0 = never *)
  max_frame : int;
  read_only : bool;
      (** replication-follower mode: mutating requests and durable commits
          are refused with a typed ["read_only"] error; sessions read at
          the follower's restored snapshot *)
  publish_poll : float;  (** publisher idle poll interval, seconds *)
}

let default_config =
  {
    group_commit = true;
    idle_timeout = 0.;
    max_frame = Proto.default_max_frame;
    read_only = false;
    publish_poll = 0.05;
  }

(* ------------------------------------------------------------------ *)
(* Exposure registries                                                 *)
(* ------------------------------------------------------------------ *)

type packed_class = Packed_class : 'a Obj_class.t -> packed_class

(** A collection made reachable over the wire, existentially packed over
    its schema type. [handle] is opened lazily (collection handles are
    store-level, so one open serves every session). *)
type exposure =
  | Exposure : {
      e_name : string;
      e_schema : 'a Obj_class.t;
      e_indexers : 'a Indexer.generic list;
      e_mutations : (string, 'a -> P.reader -> unit) Hashtbl.t;
      mutable e_handle : 'a Cstore.collection option;
      mutable e_opening : bool;  (** an opener is at work outside [mu] *)
    }
      -> exposure

type t = {
  os : Object_store.t;
  cfg : config;
  gc : Group_commit.t option;
  backups : Tdb_backup.Backup_store.t option;
      (** archive this server publishes (and, when
          [Config.replica_interval_commits > 0], auto-extends) *)
  classes : (string, packed_class) Hashtbl.t;
  colls : (string, exposure) Hashtbl.t;
  listen_fd : Unix.file_descr;
  sock_path : string option;  (** unlinked on close *)
  mu : Mutex.t;  (** guards the mutable server state below *)
  drained : Condition.t;  (** signalled when a session ends *)
  opened : Condition.t;  (** signalled when a collection open settles *)
  live : (int, Unix.file_descr) Hashtbl.t;
  mutable next_session : int;
  mutable sessions_total : int;
  mutable committed : int;
  mutable aborted : int;
  mutable stopping : bool;
  mutable accept_thread : Thread.t option;
  mutable commits_since_emit : int;  (** durable commits since the last auto-emitted incremental *)
  mutable emitting : bool;  (** one session at a time runs the emission *)
}

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let listen_on (addr : addr) : Unix.file_descr * string option =
  match addr with
  | Unix_path path ->
      if Sys.file_exists path then Unix.unlink path;
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      (fd, Some path)
  | Tcp (host, port) ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
      Unix.listen fd 64;
      (fd, None)

(* Streaming writers (publisher frames, heartbeats) can hit a peer that
   closed mid-stream; take the EPIPE as a Unix_error, not a fatal signal. *)
let ignore_sigpipe () =
  match Sys.set_signal Sys.sigpipe Sys.Signal_ignore with () -> () | exception Invalid_argument _ -> ()

let create ?(config = default_config) ?backups (os : Object_store.t) (addr : addr) : t =
  ignore_sigpipe ();
  let listen_fd, sock_path = listen_on addr in
  let gc =
    if config.group_commit then
      Some (Group_commit.create ~barrier:(fun () -> Object_store.durable_barrier os))
    else None
  in
  {
    os;
    cfg = config;
    gc;
    backups;
    classes = Hashtbl.create 16;
    colls = Hashtbl.create 16;
    listen_fd;
    sock_path;
    mu = Mutex.create ();
    drained = Condition.create ();
    opened = Condition.create ();
    live = Hashtbl.create 16;
    next_session = 0;
    sessions_total = 0;
    committed = 0;
    aborted = 0;
    stopping = false;
    accept_thread = None;
    commits_since_emit = 0;
    emitting = false;
  }

let port (t : t) : int =
  match Unix.getsockname t.listen_fd with
  | Unix.ADDR_INET (_, p) -> p
  | Unix.ADDR_UNIX _ -> invalid_arg "Server.port: Unix-domain socket"

let expose_class (t : t) (cls : 'a Obj_class.t) : unit =
  Hashtbl.replace t.classes cls.Obj_class.name (Packed_class cls)

let expose_collection (t : t) ~name ~(schema : 'a Obj_class.t)
    ~(indexers : 'a Indexer.generic list)
    ?(mutations : (string * ('a -> P.reader -> unit)) list = []) () : unit =
  (match indexers with [] -> invalid_arg "Server.expose_collection: no indexers" | _ -> ());
  let tbl = Hashtbl.create 8 in
  List.iter (fun (n, f) -> Hashtbl.replace tbl n f) mutations;
  expose_class t schema;
  Hashtbl.replace t.colls name
    (Exposure
       {
         e_name = name;
         e_schema = schema;
         e_indexers = indexers;
         e_mutations = tbl;
         e_handle = None;
         e_opening = false;
       })

(* ------------------------------------------------------------------ *)
(* Request handling                                                    *)
(* ------------------------------------------------------------------ *)

exception Reject of string * string
(** Internal: (tag, message) turned into a wire [Error_]. *)

let reject tag fmt = Printf.ksprintf (fun msg -> raise (Reject (tag, msg))) fmt

type session = {
  s_id : int;
  s_fd : Unix.file_descr;
  mutable s_ct : Cstore.t option;  (** the session's open transaction *)
}

let require_txn (s : session) : Cstore.t =
  match s.s_ct with None -> reject "no_txn" "no transaction open on this session" | Some ct -> ct

let lookup_class (t : t) (name : string) : packed_class =
  match Hashtbl.find_opt t.classes name with
  | None -> reject "not_exposed" "class %S is not exposed by this server" name
  | Some p -> p

let lookup_coll (t : t) (name : string) : exposure =
  match Hashtbl.find_opt t.colls name with
  | None -> reject "not_exposed" "collection %S is not exposed by this server" name
  | Some e -> e

(* Open (or create, on first exposure against a fresh database) the
   collection behind [e], caching the handle: collection handles are
   store-level, so the first session to touch the exposure opens it for
   everyone.

   The open itself runs *outside* [t.mu]: opening takes object-store
   locks and can park in [Lock_manager.acquire] behind another session's
   transaction, and that session may in turn need [t.mu] for its own
   handle lookup — holding the server mutex across the open is a
   server-wide stall and a two-thread deadlock (flagged by lint R7).
   [t.mu] only guards the cache state machine: an [e_opening] flag
   elects one opener, late arrivals wait on [t.opened], and the winner
   publishes the handle (or its failure) under the mutex. *)
let coll_handle (t : t) (ct : Cstore.t) (e : exposure) : exposure =
  let (Exposure ex) = e in
  let claimed = ref false in
  Mutex.lock t.mu;
  while Option.is_none ex.e_handle && not !claimed do
    if ex.e_opening then Condition.wait t.opened t.mu
    else begin
      ex.e_opening <- true;
      claimed := true
    end
  done;
  Mutex.unlock t.mu;
  if !claimed then begin
    (* Publish the result (or, on failure, the vacancy — a waiter then
       re-elects and retries) and wake everyone parked above. *)
    let settle handle =
      Mutex.lock t.mu;
      ex.e_opening <- false;
      ex.e_handle <- handle;
      Condition.broadcast t.opened;
      Mutex.unlock t.mu
    in
    match
      if Cstore.collection_exists ct ~name:ex.e_name then
        Cstore.open_collection ~indexers:ex.e_indexers ct ~name:ex.e_name ~schema:ex.e_schema
      else if t.cfg.read_only then
        (* a follower only serves what replication has delivered *)
        reject "read_only" "collection %S has not been replicated to this follower yet" ex.e_name
      else begin
        match ex.e_indexers with
        | [] -> reject "not_exposed" "collection %S has no indexers" ex.e_name
        | Indexer.Generic first :: rest ->
            let coll = Cstore.create_collection ct ~name:ex.e_name ~schema:ex.e_schema first in
            List.iter (fun (Indexer.Generic ix) -> Cstore.create_index ct coll ix) rest;
            coll
      end
    with
    | coll -> settle (Some coll)
    | exception err ->
        settle None;
        raise err
  end;
  e

let find_indexer (type a) (indexers : a Indexer.generic list) (coll_name : string) (name : string) :
    a Indexer.generic =
  match
    List.find_opt (fun g -> String.equal (Indexer.generic_name g) name) indexers
  with
  | None -> reject "not_exposed" "index %S is not exposed on collection %S" name coll_name
  | Some g -> g

(* Position an exact-match iterator; [None] when the key has no object. *)
let with_exact (type a k) ct (coll : a Cstore.collection) (ix : (a, k) Indexer.t) (key_bytes : string)
    (f : a Cstore.iterator -> 'r) : 'r option =
  let key = Gkey.of_bytes ix.Indexer.key key_bytes in
  let it = Cstore.exact ct coll ix key in
  Fun.protect
    ~finally:(fun () -> Cstore.close it)
    (fun () -> if Cstore.at_end it then None else Some (f it))

let pack (type a) (schema : a Obj_class.t) (v : a) : string = Obj_class.pickle_value schema v

(* Follower mode: refuse anything that could change the store. Nondurable
   commit of a read-only transaction stays allowed — it writes nothing and
   is how a read session ends cleanly. *)
let check_read_only (t : t) (req : Proto.request) : unit =
  if t.cfg.read_only then
    match req with
    | Proto.Set_root _ | Proto.Insert _ | Proto.Update _ | Proto.Remove _ | Proto.Coll_insert _
    | Proto.Coll_mutate _ ->
        reject "read_only" "this server is a replication follower: writes are refused"
    | Proto.Commit { durable = true } ->
        reject "read_only"
          "this server is a replication follower: durable commit refused (commit nondurably or abort)"
    | _ -> ()

(* Primary-side auto-emission: every [replica_interval_commits] durable
   commits, extend the archive with an incremental backup. The counter and
   a single-emitter election run under [t.mu]; the emission itself runs
   outside it (it takes the object store's state mutex via [with_store]). *)
let maybe_emit_incremental (t : t) : unit =
  match t.backups with
  | None -> ()
  | Some bs ->
      let interval =
        (Tdb_chunk.Shard_store.config (Object_store.chunk_store t.os)).Tdb_chunk.Config
        .replica_interval_commits
      in
      if interval > 0 then begin
        Mutex.lock t.mu;
        t.commits_since_emit <- t.commits_since_emit + 1;
        let due = t.commits_since_emit >= interval && not t.emitting in
        if due then begin
          t.emitting <- true;
          t.commits_since_emit <- 0
        end;
        Mutex.unlock t.mu;
        if due then
          Fun.protect
            ~finally:(fun () ->
              Mutex.lock t.mu;
              t.emitting <- false;
              Mutex.unlock t.mu)
            (fun () ->
              match Object_store.with_store t.os (fun _cs -> Tdb_backup.Backup_store.backup_incremental bs) with
              | (_ : int) -> ()
              | exception e ->
                  (* emission is best-effort: the commit that triggered it
                     already succeeded, and the next interval retries *)
                  prerr_endline ("tdb_server: backup auto-emission failed: " ^ Printexc.to_string e))
      end

let handle_request (t : t) (s : session) (req : Proto.request) : Proto.response =
  check_read_only t req;
  match req with
  | Proto.Hello { r_magic; r_version } ->
      if not (String.equal r_magic Proto.magic) then reject "proto" "bad magic";
      if not (Int.equal r_version Proto.version) then
        reject "proto" "protocol version %d not supported (server speaks %d)" r_version Proto.version;
      Proto.Hello_ok { a_version = Proto.version }
  | Proto.Begin -> (
      match s.s_ct with
      | Some _ -> reject "txn_open" "session already has an open transaction"
      | None ->
          s.s_ct <- Some (Cstore.begin_ t.os);
          Proto.Ok_unit)
  | Proto.Commit { durable } ->
      let ct = require_txn s in
      s.s_ct <- None;
      (match t.gc with
      | Some gc when durable ->
          (* group commit: land nondurably (atomicity settled), then let a
             shared barrier buy durability for the whole window *)
          Cstore.commit ~durable:false ct;
          Group_commit.run gc
      | _ -> Cstore.commit ~durable ct);
      Mutex.lock t.mu;
      t.committed <- t.committed + 1;
      Mutex.unlock t.mu;
      if durable then maybe_emit_incremental t;
      Proto.Ok_unit
  | Proto.Abort ->
      let ct = require_txn s in
      s.s_ct <- None;
      Cstore.abort ct;
      Mutex.lock t.mu;
      t.aborted <- t.aborted + 1;
      Mutex.unlock t.mu;
      Proto.Ok_unit
  | Proto.Get_root name -> (
      match s.s_ct with
      | Some ct -> Proto.Ok_root (Object_store.root (Cstore.txn ct) name)
      | None -> Proto.Ok_root (Object_store.get_root t.os name))
  | Proto.Set_root (name, oid) ->
      let ct = require_txn s in
      Object_store.set_root (Cstore.txn ct) name oid;
      Proto.Ok_unit
  | Proto.Insert { data } -> (
      let ct = require_txn s in
      match Obj_class.unpickle_value data with
      | Obj_class.Value (cls, v) ->
          let (Packed_class _) = lookup_class t cls.Obj_class.name in
          Proto.Ok_oid (Object_store.insert (Cstore.txn ct) cls v))
  | Proto.Read { cls; oid } -> (
      let ct = require_txn s in
      match lookup_class t cls with
      | Packed_class c ->
          let r = Object_store.open_readonly (Cstore.txn ct) c oid in
          Proto.Ok_data (pack c (Object_store.deref r)))
  | Proto.Update { oid; data } -> (
      let ct = require_txn s in
      match Obj_class.unpickle_value data with
      | Obj_class.Value (cls, v) ->
          let (Packed_class _) = lookup_class t cls.Obj_class.name in
          Object_store.update (Cstore.txn ct) cls oid v;
          Proto.Ok_unit)
  | Proto.Remove { oid } ->
      let ct = require_txn s in
      Object_store.remove (Cstore.txn ct) oid;
      Proto.Ok_unit
  | Proto.Coll_insert { coll; data } -> (
      let ct = require_txn s in
      match coll_handle t ct (lookup_coll t coll) with
      | Exposure ex -> (
          match ex.e_handle with
          | None -> reject "server" "collection %S failed to open" coll
          | Some c ->
              let v = Obj_class.cast ex.e_schema (Obj_class.unpickle_value data) in
              Proto.Ok_oid (Cstore.insert ct c v)))
  | Proto.Coll_find { coll; index; key } -> (
      let ct = require_txn s in
      match coll_handle t ct (lookup_coll t coll) with
      | Exposure ex -> (
          match ex.e_handle with
          | None -> reject "server" "collection %S failed to open" coll
          | Some c ->
              let (Indexer.Generic ix) = find_indexer ex.e_indexers coll index in
              let found =
                with_exact ct c ix key (fun it ->
                    (Cstore.current_oid it, pack ex.e_schema (Cstore.read it)))
              in
              Proto.Ok_found found))
  | Proto.Coll_scan { coll; index; min; max; limit } -> (
      let ct = require_txn s in
      match coll_handle t ct (lookup_coll t coll) with
      | Exposure ex -> (
          match ex.e_handle with
          | None -> reject "server" "collection %S failed to open" coll
          | Some c ->
              let (Indexer.Generic ix) = find_indexer ex.e_indexers coll index in
              let decode b = Gkey.of_bytes ix.Indexer.key b in
              let it =
                match (min, max) with
                | None, None -> Cstore.scan ct c ix
                | _ ->
                    Cstore.range ct c ix ~min:(Option.map decode min) ~max:(Option.map decode max)
              in
              let cap = if Int.equal limit 0 then Stdlib.max_int else limit in
              Fun.protect
                ~finally:(fun () -> Cstore.close it)
                (fun () ->
                  let acc = ref [] in
                  let n = ref 0 in
                  while (not (Cstore.at_end it)) && !n < cap do
                    acc := (Cstore.current_oid it, pack ex.e_schema (Cstore.read it)) :: !acc;
                    incr n;
                    Cstore.advance it
                  done;
                  Proto.Ok_list (List.rev !acc))))
  | Proto.Coll_mutate { coll; index; key; mutation; arg } -> (
      let ct = require_txn s in
      match coll_handle t ct (lookup_coll t coll) with
      | Exposure ex -> (
          match ex.e_handle with
          | None -> reject "server" "collection %S failed to open" coll
          | Some c -> (
              let (Indexer.Generic ix) = find_indexer ex.e_indexers coll index in
              let mut =
                match Hashtbl.find_opt ex.e_mutations mutation with
                | None -> reject "not_exposed" "mutation %S is not exposed on collection %S" mutation coll
                | Some f -> f
              in
              let updated =
                with_exact ct c ix key (fun it ->
                    let v = Cstore.write it in
                    let rd = P.reader arg in
                    mut v rd;
                    P.expect_end rd;
                    pack ex.e_schema v)
              in
              match updated with
              | None -> reject "not_found" "no object with that key in %S" coll
              | Some data -> Proto.Ok_data data)))
  | Proto.Coll_size { coll } -> (
      let ct = require_txn s in
      match coll_handle t ct (lookup_coll t coll) with
      | Exposure ex -> (
          match ex.e_handle with
          | None -> reject "server" "collection %S failed to open" coll
          | Some c -> Proto.Ok_int (Cstore.size ct c)))
  | Proto.Stats ->
      let cs = Object_store.chunk_store t.os in
      let st = Tdb_chunk.Shard_store.stats cs in
      let gb, gco =
        match t.gc with
        | None -> (0, 0)
        | Some gc ->
            let g = Group_commit.stats gc in
            (g.Group_commit.gc_batches, g.Group_commit.gc_coalesced)
      in
      Mutex.lock t.mu;
      let s_sessions = Hashtbl.length t.live in
      let s_sessions_total = t.sessions_total in
      let s_committed = t.committed in
      let s_aborted = t.aborted in
      Mutex.unlock t.mu;
      Proto.Ok_stats
        {
          Proto.s_sessions;
          s_sessions_total;
          s_committed;
          s_aborted;
          s_commits = st.Tdb_chunk.Chunk_store.commits;
          s_durable_commits = st.Tdb_chunk.Chunk_store.durable_commits;
          s_counter = Tdb_chunk.Shard_store.counter_value cs;
          s_gc_batches = gb;
          s_gc_coalesced = gco;
          s_cache_hits = st.Tdb_chunk.Chunk_store.cache_hits;
          s_cache_misses = st.Tdb_chunk.Chunk_store.cache_misses;
          s_cache_evictions = st.Tdb_chunk.Chunk_store.cache_evictions;
          s_domains = Tdb_chunk.Shard_store.domains cs;
          s_par_batches = st.Tdb_chunk.Chunk_store.par_batches;
          s_par_tasks = st.Tdb_chunk.Chunk_store.par_tasks;
          s_par_wait_us = st.Tdb_chunk.Chunk_store.par_wait_ns / 1000;
          s_backup_last_id = st.Tdb_chunk.Chunk_store.backup_last_id;
          s_backup_base_snapshot = st.Tdb_chunk.Chunk_store.backup_base_snapshot;
          s_backup_chain = st.Tdb_chunk.Chunk_store.backup_chain;
          s_shards = Tdb_chunk.Shard_store.shards cs;
          s_cross_commits = Tdb_chunk.Shard_store.cross_commits cs;
          s_shard_counters = Array.to_list (Tdb_chunk.Shard_store.shard_counters cs);
          s_shard_seqs = Array.to_list (Tdb_chunk.Shard_store.shard_seqs cs);
          s_shard_sizes = Array.to_list (Tdb_chunk.Shard_store.shard_sizes cs);
          s_shard_barriers = Array.to_list (Tdb_chunk.Shard_store.shard_barriers cs);
          s_clean_passes = st.Tdb_chunk.Chunk_store.clean_passes;
          s_segments_cleaned = st.Tdb_chunk.Chunk_store.segments_cleaned;
          s_bytes_relocated = st.Tdb_chunk.Chunk_store.bytes_relocated;
          s_bytes_data = st.Tdb_chunk.Chunk_store.bytes_data;
          s_tiers = (Tdb_chunk.Shard_store.config cs).Tdb_chunk.Config.tiers;
          s_tier_segments = st.Tdb_chunk.Chunk_store.tier_segments;
        }
  | Proto.List_backups -> (
      match t.backups with
      | None -> reject "no_archive" "this server has no archive attached"
      | Some bs ->
          let module B = Tdb_backup.Backup_store in
          let index =
            Object_store.with_store t.os (fun _cs ->
                Tdb_platform.Archival_store.list (B.archive bs)
                |> List.filter_map (fun name ->
                       match B.parse_name name with Some (id, _) -> Some (id, name) | None -> None)
                |> List.sort (fun (a, _) (b, _) -> Int.compare a b))
          in
          Proto.Ok_list index)
  | Proto.Fetch_backup { name } -> (
      match t.backups with
      | None -> reject "no_archive" "this server has no archive attached"
      | Some bs ->
          let module B = Tdb_backup.Backup_store in
          (* only names the archive itself could have produced: the name is
             attacker-supplied input, not a path to resolve *)
          (match B.parse_name name with
          | None -> reject "not_found" "%S is not an archive stream name" name
          | Some _ -> ());
          let stream =
            Object_store.with_store t.os (fun _cs ->
                Tdb_platform.Archival_store.get (B.archive bs) ~name)
          in
          match stream with
          | None -> reject "not_found" "archive stream %S not found" name
          | Some s -> Proto.Ok_data s)
  | Proto.Bye -> Proto.Ok_unit
  | Proto.Subscribe _ ->
      (* reached only when the session loop could not switch this
         connection into publish mode *)
      reject "no_archive" "this server has no archive attached to publish"

(* Abort the session's transaction, if any, counting it. *)
let abort_session_txn (t : t) (s : session) : unit =
  match s.s_ct with
  | None -> ()
  | Some ct ->
      s.s_ct <- None;
      Cstore.abort ct;
      Mutex.lock t.mu;
      t.aborted <- t.aborted + 1;
      Mutex.unlock t.mu

(* One request -> one response, mapping store exceptions to wire errors.
   A lock timeout aborts the transaction before reporting: the paper's
   timeout is a deadlock breaker, and a server that kept the deadlocked
   transaction's locks would not have broken anything. *)
let respond (t : t) (s : session) (req : Proto.request) : Proto.response =
  match handle_request t s req with
  | resp -> resp
  | exception Reject (tag, msg) -> Proto.Error_ { tag; msg }
  | exception Lock_manager.Lock_timeout { oid; txn = _ } ->
      abort_session_txn t s;
      Proto.Error_
        {
          tag = "lock_timeout";
          msg = Printf.sprintf "lock timeout on object %d; transaction aborted — retry" oid;
        }
  | exception Obj_class.Type_mismatch { expected; actual } ->
      Proto.Error_
        { tag = "type_mismatch"; msg = Printf.sprintf "expected class %s, stored %s" expected actual }
  | exception Obj_class.Unknown_class c ->
      Proto.Error_ { tag = "unknown_class"; msg = Printf.sprintf "class %S not registered" c }
  | exception Object_store.Unknown_object oid ->
      Proto.Error_ { tag = "unknown_object"; msg = Printf.sprintf "no object %d" oid }
  | exception Object_store.Removed_in_transaction oid ->
      Proto.Error_ { tag = "removed"; msg = Printf.sprintf "object %d removed in this transaction" oid }
  | exception Cstore.Concurrent_iterators ->
      Proto.Error_ { tag = "concurrent_iterators"; msg = "write requires a sole open iterator" }
  | exception Cstore.Unknown_index ix ->
      Proto.Error_ { tag = "unknown_index"; msg = ix }
  | exception Tdb_collection.Index.Duplicate_key { index; key = _ } ->
      Proto.Error_ { tag = "duplicate_key"; msg = Printf.sprintf "unique violation on index %S" index }
  | exception Tdb_collection.Index.Unsupported_query ix ->
      Proto.Error_ { tag = "unsupported_query"; msg = Printf.sprintf "index %S cannot range-scan" ix }
  | exception Tdb_chunk.Types.Tamper_detected msg -> Proto.Error_ { tag = "tamper"; msg }
  | exception P.Error msg -> Proto.Error_ { tag = "pickle"; msg }
  | exception Invalid_argument msg -> Proto.Error_ { tag = "invalid"; msg }
  | exception Failure msg -> Proto.Error_ { tag = "failed"; msg }

(* ------------------------------------------------------------------ *)
(* Publisher                                                           *)
(* ------------------------------------------------------------------ *)

(* After a [Subscribe], the connection becomes a one-way archive feed:
   [Rep_frame]s in backup-id order, a [Rep_heartbeat] after every batch
   (and on idle ticks, as the liveness/lag signal), until the subscriber
   disconnects or the server stops.

   The publisher trusts nothing from the subscriber. Its position
   [(r_last_id, r_chain)] is only a cursor hint: if it claims our exact
   position but its chain value differs, or claims to be ahead of us, it
   has diverged and is restarted from the newest full. A subscriber whose
   stale chain we *cannot* detect simply fails verification on its own
   side and re-subscribes from genesis. Archive reads run under the object
   store's state mutex (serialized against emissions); socket writes
   happen outside every lock. *)
let publish_loop (t : t) (s : session) (bs : Tdb_backup.Backup_store.t) ~(sub_last_id : int)
    ~(sub_chain : string) : unit =
  let module B = Tdb_backup.Backup_store in
  let archive = B.archive bs in
  let cursor = ref sub_last_id in
  let first = ref true in
  let stopping () =
    Mutex.lock t.mu;
    let v = t.stopping in
    Mutex.unlock t.mu;
    v
  in
  while not (stopping ()) do
    let frames, hb =
      Object_store.with_store t.os (fun cs ->
          let st = B.chain_state bs in
          let index =
            Tdb_platform.Archival_store.list archive
            |> List.filter_map (fun name ->
                   match B.parse_name name with Some (id, k) -> Some (id, k, name) | None -> None)
            |> List.sort (fun (a, _, _) (b, _, _) -> Int.compare a b)
          in
          let newest_full =
            List.fold_left
              (fun acc (id, k, _) -> match k with `Full -> max acc id | `Incremental -> acc)
              0 index
          in
          if !first then begin
            first := false;
            if
              !cursor > st.last_id
              || (Int.equal !cursor st.last_id && not (Tdb_crypto.Ct.equal_string sub_chain st.chain))
            then cursor := max 0 (newest_full - 1)
          end;
          (* a subscriber behind the newest full can only catch up from
             that full: incrementals below it chain from a history the
             archive may no longer hold *)
          if newest_full > !cursor + 1 then cursor := newest_full - 1;
          let to_send =
            List.filter_map
              (fun (id, _, name) ->
                if id > !cursor then
                  match Tdb_platform.Archival_store.get archive ~name with
                  | Some stream -> Some (id, name, stream)
                  | None -> None
                else None)
              index
          in
          let hb =
            Proto.Rep_heartbeat
              {
                h_last_id = st.last_id;
                h_seq = Tdb_chunk.Shard_store.commit_seq cs;
                h_counter = Tdb_chunk.Shard_store.counter_value cs;
              }
          in
          (to_send, hb))
    in
    List.iter
      (fun (id, name, stream) ->
        Proto.write_frame s.s_fd (Proto.encode_response (Proto.Rep_frame { f_name = name; f_stream = stream }));
        cursor := max !cursor id)
      frames;
    Proto.write_frame s.s_fd (Proto.encode_response hb);
    match frames with [] -> Thread.delay t.cfg.publish_poll | _ :: _ -> ()
  done

(* ------------------------------------------------------------------ *)
(* Session loop                                                        *)
(* ------------------------------------------------------------------ *)

let finish_session (t : t) (s : session) : unit =
  abort_session_txn t s;
  (match Unix.close s.s_fd with () -> () | exception Unix.Unix_error (_, _, _) -> ());
  Mutex.lock t.mu;
  Hashtbl.remove t.live s.s_id;
  Condition.broadcast t.drained;
  Mutex.unlock t.mu

let session_loop (t : t) (s : session) : unit =
  if t.cfg.idle_timeout > 0. then
    Unix.setsockopt_float s.s_fd Unix.SO_RCVTIMEO t.cfg.idle_timeout;
  let rec loop () =
    let req = Proto.decode_request (Proto.read_frame ~max_frame:t.cfg.max_frame s.s_fd) in
    match (req, t.backups) with
    | Proto.Subscribe { r_last_id; r_chain }, Some bs ->
        (* mode switch: this connection is now a publish feed and never
           returns to request/response *)
        publish_loop t s bs ~sub_last_id:r_last_id ~sub_chain:r_chain
    | _ ->
        let resp = respond t s req in
        Proto.write_frame s.s_fd (Proto.encode_response resp);
        (match req with Proto.Bye -> () | _ -> loop ())
  in
  Fun.protect
    ~finally:(fun () -> finish_session t s)
    (fun () ->
      match loop () with
      | () -> ()
      | exception End_of_file -> () (* client disconnected; finally aborts its txn *)
      | exception Proto.Proto_error _ -> () (* garbage on the wire: drop the session *)
      | exception P.Error _ -> ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          () (* idle timeout fired: drop the session, aborting its txn *)
      | exception Unix.Unix_error (_, _, _) -> ()
      | exception e ->
          (* anything else is a server-side defect; drop the session rather
             than kill the process, but say so *)
          prerr_endline ("tdb_server: session error: " ^ Printexc.to_string e))

let accept_loop (t : t) : unit =
  let rec loop () =
    match Unix.accept t.listen_fd with
    | fd, _peer ->
        let s =
          Mutex.lock t.mu;
          let id = t.next_session in
          t.next_session <- id + 1;
          t.sessions_total <- t.sessions_total + 1;
          Hashtbl.replace t.live id fd;
          Mutex.unlock t.mu;
          { s_id = id; s_fd = fd; s_ct = None }
        in
        ignore (Thread.create (fun () -> session_loop t s) ());
        loop ()
    | exception Unix.Unix_error (_, _, _) ->
        (* listener closed by [stop] (or a transient accept failure while
           stopping); only keep going if we are not shutting down *)
        let continue_ =
          Mutex.lock t.mu;
          let c = not t.stopping in
          Mutex.unlock t.mu;
          c
        in
        if continue_ then loop ()
  in
  loop ()

let start (t : t) : unit =
  match t.accept_thread with
  | Some _ -> invalid_arg "Server.start: already started"
  | None -> t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ())

let serve (t : t) : unit =
  match t.accept_thread with
  | Some _ -> invalid_arg "Server.serve: already started"
  | None ->
      t.accept_thread <- Some (Thread.self ());
      accept_loop t

let stop ?(timeout = 5.0) (t : t) : unit =
  Mutex.lock t.mu;
  t.stopping <- true;
  (* shut live sessions down: their blocked reads fail, each loop exits
     through its finally, aborting any open transaction *)
  Hashtbl.iter
    (fun _ fd ->
      match Unix.shutdown fd Unix.SHUTDOWN_ALL with
      | () -> ()
      | exception Unix.Unix_error (_, _, _) -> ())
    t.live;
  Mutex.unlock t.mu;
  (match Unix.close t.listen_fd with () -> () | exception Unix.Unix_error (_, _, _) -> ());
  (match t.sock_path with
  | Some p when Sys.file_exists p -> Unix.unlink p
  | Some _ | None -> ());
  (* wait (bounded) for session threads to drain so their aborts land *)
  let deadline = Unix.gettimeofday () +. timeout in
  Mutex.lock t.mu;
  while Hashtbl.length t.live > 0 && Unix.gettimeofday () < deadline do
    Mutex.unlock t.mu;
    Thread.delay 0.005;
    Mutex.lock t.mu
  done;
  Mutex.unlock t.mu
