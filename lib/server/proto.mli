(** Wire protocol for the TDB network service: versioned, length-prefixed
    frames whose payloads are encoded with {!Tdb_pickle.Pickle} — never
    [Marshal]; the wire crosses a trust boundary and lint rule R3 bans
    unsafe serialization here mechanically.

    Typed object payloads travel in {!Tdb_objstore.Obj_class} packed form
    (class name + version embedded); index keys travel as
    {!Tdb_collection.Gkey} canonical bytes. *)

exception Proto_error of string
(** Malformed frame, unknown opcode, version mismatch, or oversized
    payload. *)

val version : int
val magic : string

val default_max_frame : int
(** Hard bound on frame payloads — the length prefix is attacker-supplied
    and must not size an allocation unchecked. *)

(** {1 Messages} *)

type request =
  | Hello of { r_magic : string; r_version : int }
  | Begin
  | Commit of { durable : bool }
  | Abort
  | Get_root of string
  | Set_root of string * int option
  | Insert of { data : string }  (** packed value; returns the new oid *)
  | Read of { cls : string; oid : int }  (** class-checked read *)
  | Update of { oid : int; data : string }  (** packed value replaces state *)
  | Remove of { oid : int }
  | Coll_insert of { coll : string; data : string }
  | Coll_find of { coll : string; index : string; key : string }
  | Coll_scan of { coll : string; index : string; min : string option; max : string option; limit : int }
  | Coll_mutate of { coll : string; index : string; key : string; mutation : string; arg : string }
  | Coll_size of { coll : string }
  | Stats
  | Bye
  | Subscribe of { r_last_id : int; r_chain : string }
      (** switch the connection to publish mode: stream archive frames
          from after the subscriber's chain position. Both fields are
          untrusted hints; the subscriber verifies every frame. *)
  | List_backups  (** archive index: (backup id, archive name) pairs *)
  | Fetch_backup of { name : string }
      (** one archive stream by name — an opaque sealed backup frame the
          client verifies and unseals locally under the device secret *)

type stats = {
  s_sessions : int;  (** sessions currently connected *)
  s_sessions_total : int;
  s_committed : int;  (** transactions committed through the service *)
  s_aborted : int;  (** transactions aborted (explicit, timeout or disconnect) *)
  s_commits : int;  (** chunk-store commits (all kinds) *)
  s_durable_commits : int;  (** chunk-store durable commits (incl. barriers) *)
  s_counter : int64;  (** one-way counter value *)
  s_gc_batches : int;  (** group-commit barriers run *)
  s_gc_coalesced : int;  (** durable commits absorbed into those barriers *)
  s_cache_hits : int;  (** verified-chunk cache hits (reads served decrypted) *)
  s_cache_misses : int;  (** cache misses (full fetch + decrypt + verify) *)
  s_cache_evictions : int;  (** entries evicted under budget pressure *)
  s_domains : int;  (** seal/unseal pipeline width the store runs at *)
  s_par_batches : int;  (** batches fanned out over the domain pool *)
  s_par_tasks : int;  (** items executed through the pool *)
  s_par_wait_us : int;  (** coordinator µs parked waiting on pool workers *)
  s_backup_last_id : int;  (** backup/replication chain position (0 = none) *)
  s_backup_base_snapshot : int;  (** snapshot the next incremental diffs against; -1 = none *)
  s_backup_chain : string;  (** current backup hash-chain value ("" = never attached) *)
  s_shards : int;  (** shard width of the chunk store (1 = unsharded) *)
  s_cross_commits : int;  (** commits that took the cross-shard 2PC path *)
  s_shard_counters : int64 list;  (** per-shard one-way counter values *)
  s_shard_seqs : int list;  (** per-shard commit sequence numbers *)
  s_shard_sizes : int list;  (** per-shard store sizes in bytes (log tail) *)
  s_shard_barriers : int list;  (** per-shard staged group-commit barriers run *)
  s_clean_passes : int;  (** cleaning passes run (all shards) *)
  s_segments_cleaned : int;  (** segments reclaimed by the cleaner *)
  s_bytes_relocated : int;  (** chunk ciphertext bytes the cleaner recopied *)
  s_bytes_data : int;  (** chunk payload bytes appended (write-amp denominator) *)
  s_tiers : int;  (** configured cleaning generations (1 = single population) *)
  s_tier_segments : int list;  (** live-segment count per cleaning tier, summed over shards *)
}

type response =
  | Hello_ok of { a_version : int }
  | Ok_unit
  | Ok_oid of int
  | Ok_data of string
  | Ok_found of (int * string) option
  | Ok_list of (int * string) list
  | Ok_root of int option
  | Ok_int of int
  | Ok_stats of stats
  | Error_ of { tag : string; msg : string }
  | Rep_frame of { f_name : string; f_stream : string }
      (** one archive stream (sealed, MAC'd backup frame — opaque here) *)
  | Rep_heartbeat of { h_last_id : int; h_seq : int; h_counter : int64 }
      (** publisher position: newest archive id, commit sequence, one-way
          counter — what follower lag is measured against *)

val encode_request : request -> string

val decode_request : string -> request
(** @raise Proto_error on an unknown opcode.
    @raise Tdb_pickle.Pickle.Error on malformed bytes. *)

val encode_response : response -> string

val decode_response : string -> response
(** @raise Proto_error on an unknown opcode.
    @raise Tdb_pickle.Pickle.Error on malformed bytes. *)

(** {1 Framing} *)

val write_frame : Unix.file_descr -> string -> unit
(** Write one length-prefixed frame (handles short writes). *)

val read_frame : ?max_frame:int -> Unix.file_descr -> string
(** Read one frame.
    @raise End_of_file on a clean disconnect (EOF on a frame boundary).
    @raise Proto_error on a torn frame or an oversized length prefix. *)
