(** Group commit: coalesce concurrent sessions' durable commits into one
    durable barrier.

    The chunk store's commit protocol makes durability expensive — a log
    force plus a one-way counter increment (paper Section 3.1.2) — and
    makes nondurable commits cheap but conditional: they survive only once
    a later durable barrier lands. That split is exactly the contract
    group commit needs. A session wanting a durable commit first commits
    {e nondurably} (atomicity and isolation are settled at that point),
    then calls {!run} here and blocks until some barrier covers it.

    Tickets order commits against barriers. Each caller takes the next
    ticket {e after} its nondurable commit has landed; a leader claims
    [claim = next_ticket] before running the barrier, so every ticket
    below [claim] names a commit that is already in the log when the
    barrier starts — the barrier genuinely covers it. Tickets at or above
    [claim] arrived too late and wait for the next barrier; the first such
    waiter to wake becomes that barrier's leader. One barrier, one sync,
    one counter bump, arbitrarily many commits.

    A barrier that raises poisons the coordinator: the store's durability
    story is broken and every current and future caller gets the same
    exception rather than a false durability claim. *)

type t = {
  mu : Mutex.t;
  cond : Condition.t;
  barrier : unit -> unit;  (** the durable barrier; called outside [mu] *)
  mutable next_ticket : int;
  mutable durable_ticket : int;  (** every ticket below this is durable *)
  mutable leader_active : bool;
  mutable poisoned : exn option;
  mutable batches : int;
  mutable coalesced : int;
}

let create ~(barrier : unit -> unit) : t =
  {
    mu = Mutex.create ();
    cond = Condition.create ();
    barrier;
    next_ticket = 0;
    durable_ticket = 0;
    leader_active = false;
    poisoned = None;
    batches = 0;
    coalesced = 0;
  }

let check_poisoned t =
  match t.poisoned with
  | Some e ->
      Mutex.unlock t.mu;
      raise e
  | None -> ()

(** Make the caller's already-landed nondurable commit durable. Blocks
    until a barrier covers it; runs the barrier itself when it gets there
    first. *)
let run (t : t) : unit =
  Mutex.lock t.mu;
  check_poisoned t;
  let my = t.next_ticket in
  t.next_ticket <- t.next_ticket + 1;
  t.coalesced <- t.coalesced + 1;
  let rec wait () =
    if t.durable_ticket > my then Mutex.unlock t.mu (* covered by a finished barrier *)
    else begin
      check_poisoned t;
      if t.leader_active then begin
        (* a barrier is running (or a leader is being elected elsewhere);
           it may not cover us — re-check when it broadcasts *)
        Condition.wait t.cond t.mu;
        wait ()
      end
      else begin
        (* become the leader: claim every ticket issued so far — all their
           nondurable commits are in the log (tickets are taken post-commit
           under this mutex) — and run the barrier outside the lock so
           late arrivals can queue for the next round *)
        t.leader_active <- true;
        let claim = t.next_ticket in
        Mutex.unlock t.mu;
        let outcome = try Ok (t.barrier ()) with e -> Error e in
        Mutex.lock t.mu;
        t.leader_active <- false;
        (match outcome with
        | Ok () ->
            t.durable_ticket <- claim;
            t.batches <- t.batches + 1
        | Error e -> t.poisoned <- Some e);
        Condition.broadcast t.cond;
        match outcome with
        | Ok () -> Mutex.unlock t.mu (* [my] < [claim] by construction *)
        | Error e ->
            Mutex.unlock t.mu;
            raise e
      end
    end
  in
  wait ()

type stats = { gc_batches : int; gc_coalesced : int }

let stats (t : t) : stats =
  Mutex.lock t.mu;
  let s = { gc_batches = t.batches; gc_coalesced = t.coalesced } in
  Mutex.unlock t.mu;
  s
