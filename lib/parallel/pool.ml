(** Process-wide worker-domain pool. See the interface for the contract.

    One mutex [mu] guards everything: task publication, completion counts
    and coordinator turn-taking. Item distribution inside a batch is
    lock-free ([Atomic.fetch_and_add] on the next-index counter), so the
    mutex is touched O(domains) times per batch, not O(items).

    Determinism: a worker writes only [results.(i)] for the indices it
    claimed; the coordinator publishes the batch and collects the results
    under [mu], whose acquire/release edges order those writes before the
    reads. The result array is then folded in index order, so both values
    and the choice of which exception propagates are independent of the
    worker interleaving. *)

type task = {
  t_id : int;
  t_n : int;
  t_claims : int Atomic.t;  (** worker participation slots ([width - 1]) *)
  t_width : int;
  t_next : int Atomic.t;  (** next unclaimed item index *)
  t_run : int -> unit;  (** run one item; never raises *)
  mutable t_completed : int;  (** items finished; guarded by [mu] *)
}

type t = {
  mu : Mutex.t;
  work : Condition.t;  (** workers: a new task was published *)
  idle : Condition.t;  (** coordinators: batch completed / pool free *)
  mutable current : task option;  (** [Some _] while a batch is in flight *)
  mutable next_id : int;
  mutable nworkers : int;
  mutable st_tasks : int;
  mutable st_batches : int;
  mutable st_wait_ns : int;
}

(* OCaml caps the process at ~128 domains; 8 covers the paper-scale
   embedder and leaves plenty of headroom for the rest of the process. *)
let max_total_domains = 8

let default_domains () =
  match Sys.getenv_opt "TDB_DOMAINS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> min n max_total_domains
      | Some _ | None -> invalid_arg "TDB_DOMAINS must be a positive integer")
  | None -> min max_total_domains (max 1 (Domain.recommended_domain_count ()))

let make () =
  {
    mu = Mutex.create ();
    work = Condition.create ();
    idle = Condition.create ();
    current = None;
    next_id = 0;
    nworkers = 0;
    st_tasks = 0;
    st_batches = 0;
    st_wait_ns = 0;
  }

let pool = lazy (make ())

(* Claim a participation slot, then pull item indices until the batch
   runs dry. Returns how many items this domain executed. *)
let participate (tk : task) : int =
  let mine = ref 0 in
  if Atomic.fetch_and_add tk.t_claims 1 < tk.t_width then begin
    let more = ref true in
    while !more do
      let i = Atomic.fetch_and_add tk.t_next 1 in
      if i < tk.t_n then begin
        tk.t_run i;
        incr mine
      end
      else more := false
    done
  end;
  !mine

(* Workers never exit: the pool lives for the process, and [exit]
   terminates parked domains with it. [last] is the id of the task this
   worker already served, so re-observing it parks instead of re-running. *)
let rec worker_loop (p : t) ~(last : int) : unit =
  Mutex.lock p.mu;
  let tk =
    let rec await () =
      match p.current with
      | Some tk when not (Int.equal tk.t_id last) -> tk
      | Some _ | None ->
          Condition.wait p.work p.mu;
          await ()
    in
    await ()
  in
  Mutex.unlock p.mu;
  let mine = participate tk in
  if mine > 0 then begin
    Mutex.lock p.mu;
    tk.t_completed <- tk.t_completed + mine;
    if tk.t_completed >= tk.t_n then Condition.broadcast p.idle;
    Mutex.unlock p.mu
  end;
  worker_loop p ~last:tk.t_id

(* Grow the pool to [n] workers; called under [mu]. A freshly spawned
   worker blocks on [mu] until the coordinator releases it. *)
let ensure_workers (p : t) (n : int) : unit =
  let n = min n (max_total_domains - 1) in
  while p.nworkers < n do
    p.nworkers <- p.nworkers + 1;
    ignore (Domain.spawn (fun () -> worker_loop p ~last:0))
  done

let map ~(domains : int) (arr : 'a array) (f : 'a -> 'b) : 'b array =
  let n = Array.length arr in
  if domains <= 1 || n <= 1 then Array.map f arr
  else begin
    let p = Lazy.force pool in
    let results : ('b, exn) result option array = Array.make n None in
    let run i = results.(i) <- Some (try Ok (f arr.(i)) with e -> Error e) in
    Mutex.lock p.mu;
    while p.current <> None do
      Condition.wait p.idle p.mu
    done;
    ensure_workers p (domains - 1);
    p.next_id <- p.next_id + 1;
    let tk =
      {
        t_id = p.next_id;
        t_n = n;
        t_claims = Atomic.make 0;
        t_width = min (domains - 1) p.nworkers;
        t_next = Atomic.make 0;
        t_run = run;
        t_completed = 0;
      }
    in
    p.current <- Some tk;
    p.st_batches <- p.st_batches + 1;
    p.st_tasks <- p.st_tasks + n;
    Condition.broadcast p.work;
    Mutex.unlock p.mu;
    let mine = participate tk in
    Mutex.lock p.mu;
    tk.t_completed <- tk.t_completed + mine;
    if tk.t_completed < tk.t_n then begin
      let t0 = Unix.gettimeofday () in
      while tk.t_completed < tk.t_n do
        Condition.wait p.idle p.mu
      done;
      p.st_wait_ns <- p.st_wait_ns + int_of_float ((Unix.gettimeofday () -. t0) *. 1e9)
    end;
    p.current <- None;
    (* wake any coordinator parked waiting for its turn *)
    Condition.broadcast p.idle;
    Mutex.unlock p.mu;
    Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error e) -> raise e
        | None -> assert false (* completed batch: every slot settled *))
      results
  end

type stats = { p_workers : int; p_tasks : int; p_batches : int; p_wait_ns : int }

let stats () : stats =
  if not (Lazy.is_val pool) then { p_workers = 0; p_tasks = 0; p_batches = 0; p_wait_ns = 0 }
  else begin
    let p = Lazy.force pool in
    Mutex.lock p.mu;
    let s =
      { p_workers = p.nworkers; p_tasks = p.st_tasks; p_batches = p.st_batches; p_wait_ns = p.st_wait_ns }
    in
    Mutex.unlock p.mu;
    s
  end
