(** A fixed, process-wide pool of worker domains for the seal/unseal
    pipeline (see DESIGN.md, "Parallelism model").

    The pool is a lazily-created singleton: OCaml caps a process at ~128
    domains, and short-lived embedders (the crash fuzzer opens thousands
    of stores) cannot afford per-store domains. Workers are spawned on
    first demand and live for the rest of the process; an idle pool costs
    nothing but parked threads.

    {!map} is deterministic by construction: results land in an array by
    input index, and a failing item re-raises the {e lowest-index}
    exception once every item has settled, so the caller observes the
    same outcome regardless of how items interleave across domains —
    [map ~domains:1] and [map ~domains:4] are observationally identical.

    Worker closures must be pure with respect to coordinator-owned state:
    they receive immutable inputs and return values; every insertion into
    shared structures (caches, maps, the log) is the coordinator's job. *)

val default_domains : unit -> int
(** Domain budget for {!Config.t}: the [TDB_DOMAINS] environment variable
    when set, else [Domain.recommended_domain_count ()], clamped to
    [1, 8]. *)

val map : domains:int -> 'a array -> ('a -> 'b) -> 'b array
(** [map ~domains arr f] computes [Array.map f arr] using up to [domains]
    domains (the caller participates; [domains - 1] pool workers join).
    [domains <= 1] or a batch of fewer than two items runs inline without
    touching the pool. If any [f arr.(i)] raises, the exception from the
    smallest such [i] is re-raised after all items settle. *)

type stats = {
  p_workers : int;  (** worker domains spawned so far *)
  p_tasks : int;  (** items executed through the pool *)
  p_batches : int;  (** {!map} calls that used the pool *)
  p_wait_ns : int;  (** coordinator time parked waiting for workers *)
}

val stats : unit -> stats
(** Process-wide counters (zeros when the pool was never used). *)
