(** Binary pickling combinators.

    TDB stores C++ objects by calling application-supplied pickle methods
    (paper Section 4.1); this module is the OCaml equivalent: a compact,
    architecture-independent binary format with explicit writer/reader
    combinators. Integers use zig-zag varints so small DRM records stay
    small; fixed-width forms exist where stable sizes matter. *)

exception Error of string
(** Malformed or truncated input (all read failures raise this). *)

(** {1 Writer} *)

type writer = { buf : Buffer.t }

val writer : unit -> writer
val contents : writer -> string
val writer_length : writer -> int
val byte : writer -> int -> unit
val bool : writer -> bool -> unit
val char : writer -> char -> unit

val int : writer -> int -> unit
(** Zig-zag varint: 1 byte for |v| < 64, up to 9 bytes for any [int]. *)

val uint : writer -> int -> unit
(** Plain varint. @raise Error on negative input. *)

val int64 : writer -> int64 -> unit
(** Fixed 8 bytes, big-endian. *)

val int32_fixed : writer -> int -> unit
(** Fixed 4 bytes, big-endian (low 32 bits). *)

val float : writer -> float -> unit
val string : writer -> string -> unit
val bytes : writer -> bytes -> unit
val option : writer -> (writer -> 'a -> unit) -> 'a option -> unit
val list : writer -> (writer -> 'a -> unit) -> 'a list -> unit
val array : writer -> (writer -> 'a -> unit) -> 'a array -> unit
val pair : writer -> (writer -> 'a -> unit) -> (writer -> 'b -> unit) -> 'a * 'b -> unit

val triple :
  writer -> (writer -> 'a -> unit) -> (writer -> 'b -> unit) -> (writer -> 'c -> unit) -> 'a * 'b * 'c -> unit

(** {1 Reader} *)

type reader

val reader : ?off:int -> ?len:int -> string -> reader
(** A reader over a window of [s]. @raise Error on bad bounds. *)

val remaining : reader -> int
val at_end : reader -> bool
val read_byte : reader -> int
val read_char : reader -> char
val read_bool : reader -> bool
val read_uint : reader -> int
val read_int : reader -> int
val read_int64 : reader -> int64
val read_int32_fixed : reader -> int
val read_float : reader -> float
val read_string : reader -> string
val read_bytes : reader -> bytes
val read_option : reader -> (reader -> 'a) -> 'a option
val read_list : reader -> (reader -> 'a) -> 'a list
val read_pair : reader -> (reader -> 'a) -> (reader -> 'b) -> 'a * 'b
val read_triple : reader -> (reader -> 'a) -> (reader -> 'b) -> (reader -> 'c) -> 'a * 'b * 'c

val expect_end : reader -> unit
(** Fail unless everything was consumed — catches class mismatches early.
    @raise Error when trailing bytes remain. *)
