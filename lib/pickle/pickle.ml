(** Binary pickling combinators.

    TDB stores C++ objects by calling application-supplied pickle methods
    (paper Section 4.1); this module is the OCaml equivalent: a compact,
    architecture-independent binary format with explicit writer/reader
    combinators. Integers use LEB128-style varints so small DRM records
    (meters, balances) stay small on disk, as the paper's variable-sized
    chunks intend. *)

exception Error of string

let error fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

type writer = { buf : Buffer.t }

let writer () = { buf = Buffer.create 64 }
let contents w = Buffer.contents w.buf
let writer_length w = Buffer.length w.buf

let byte w (v : int) = Buffer.add_char w.buf (Char.chr (v land 0xff))
let bool w (v : bool) = byte w (if v then 1 else 0)
let char w (v : char) = Buffer.add_char w.buf v

(* Zig-zag varint: works for negative ints, compact for small magnitudes. *)
let int w (v : int) =
  let u = (v lsl 1) lxor (v asr 62) in
  let rec go u =
    if u land lnot 0x7f = 0 then byte w u
    else begin
      byte w (u land 0x7f lor 0x80);
      go (u lsr 7)
    end
  in
  go u

let uint w (v : int) =
  if v < 0 then error "Pickle.uint: negative";
  let rec go u = if u land lnot 0x7f = 0 then byte w u else (byte w (u land 0x7f lor 0x80); go (u lsr 7)) in
  go v

let int64 w (v : int64) =
  (* fixed 8-byte big-endian *)
  for i = 7 downto 0 do
    byte w (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff)
  done

let int32_fixed w (v : int) =
  for i = 3 downto 0 do
    byte w ((v lsr (8 * i)) land 0xff)
  done

let float w (v : float) = int64 w (Int64.bits_of_float v)

let string w (s : string) =
  uint w (String.length s);
  Buffer.add_string w.buf s

let bytes w (b : bytes) = string w (Bytes.unsafe_to_string b)
let option w f = function None -> bool w false | Some v -> bool w true; f w v

let list w f l =
  uint w (List.length l);
  List.iter (f w) l

let array w f a =
  uint w (Array.length a);
  Array.iter (fun x -> f w x) a

let pair w fa fb (a, b) = fa w a; fb w b
let triple w fa fb fc (a, b, c) = fa w a; fb w b; fc w c

(* ------------------------------------------------------------------ *)
(* Reader                                                              *)
(* ------------------------------------------------------------------ *)

type reader = { src : string; mutable pos : int; limit : int }

let reader ?(off = 0) ?len (s : string) =
  let limit = match len with Some l -> off + l | None -> String.length s in
  if off < 0 || limit > String.length s then error "Pickle.reader: bad bounds";
  { src = s; pos = off; limit }

let remaining r = r.limit - r.pos
let at_end r = r.pos >= r.limit

let read_byte r =
  if r.pos >= r.limit then error "Pickle: truncated input (byte)";
  let c = Char.code r.src.[r.pos] in
  r.pos <- r.pos + 1;
  c

let read_char r = Char.chr (read_byte r)

let read_bool r =
  match read_byte r with 0 -> false | 1 -> true | n -> error "Pickle: invalid bool %d" n

let read_uint r =
  let rec go shift acc =
    if shift > 62 then error "Pickle: varint too long";
    let b = read_byte r in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 <> 0 then go (shift + 7) acc else acc
  in
  go 0 0

let read_int r =
  let u = read_uint r in
  (u lsr 1) lxor (-(u land 1))

let read_int64 r =
  let v = ref 0L in
  for _ = 0 to 7 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (read_byte r))
  done;
  !v

let read_int32_fixed r =
  let v = ref 0 in
  for _ = 0 to 3 do
    v := (!v lsl 8) lor read_byte r
  done;
  !v

let read_float r = Int64.float_of_bits (read_int64 r)

let read_string r =
  let n = read_uint r in
  if n > remaining r then error "Pickle: truncated input (string of %d, %d left)" n (remaining r);
  let s = String.sub r.src r.pos n in
  r.pos <- r.pos + n;
  s

let read_bytes r = Bytes.of_string (read_string r)
let read_option r f = if read_bool r then Some (f r) else None

let read_list r f =
  let n = read_uint r in
  List.init n (fun _ -> f r)

let read_pair r fa fb =
  let a = fa r in
  let b = fb r in
  (a, b)

let read_triple r fa fb fc =
  let a = fa r in
  let b = fb r in
  let c = fc r in
  (a, b, c)

(** Fail unless the reader consumed everything — catches class mismatches
    early, part of TDB's "catch common programming mistakes" stance. *)
let expect_end r = if not (at_end r) then error "Pickle: %d trailing bytes" (remaining r)
