(** The collection store (paper Section 5): keyed access to collections of
    objects with automatically maintained functional indexes.

    - A collection is a set of objects sharing one or more indexes; all
      objects belong to at most one collection.
    - Indexes are functional: keys are produced by pure extractor functions
      (see {!Indexer}), so keys can be variable-sized or derived values.
    - Queries (scan / exact-match / range) return *insensitive* iterators:
      an iterator never sees the effects of updates made through it. The
      four constraints of Section 5.2.2 are enforced:
      1. writable references to collection objects exist only by
         dereferencing an iterator (the CTransaction API offers no other
         way);
      2. an iterator can be dereferenced writable only while it is the sole
         open iterator on its collection;
      3. iterators advance in one direction only;
      4. index maintenance is deferred until the iterator closes, using
         pre/post key snapshots (Section 5.2.3).
    - Deferred maintenance can surface duplicate keys in unique indexes
      only at close; offending objects are removed from the collection and
      reported in {!Unique_violation}, as in the paper. *)

open Tdb_objstore

type oid = Object_store.oid

exception Unknown_index of string
exception Missing_indexer of string
exception Last_index
exception Concurrent_iterators
exception Iterator_closed
exception Not_in_collection of oid

exception Unique_violation of { index : string; removed : oid list }
(** Raised at iterator close (or collection insert / index creation): the
    listed objects were removed from the collection so the application can
    re-integrate them (paper Section 5.2.3). *)

(* ------------------------------------------------------------------ *)
(* Persistent collection metadata                                      *)
(* ------------------------------------------------------------------ *)

type index_meta = { im_name : string; im_impl : Indexer.impl; im_unique : bool; im_anchor : oid }

type coll_obj = { co_schema : string; mutable co_indexes : index_meta list; mutable co_size : int }

let coll_cls : coll_obj Obj_class.t =
  let module P = Tdb_pickle.Pickle in
  Obj_class.define ~name:"tdb.collection"
    ~pickle:(fun w c ->
      P.string w c.co_schema;
      P.list w
        (fun w m ->
          P.string w m.im_name;
          P.byte w (Indexer.impl_to_byte m.im_impl);
          P.bool w m.im_unique;
          P.uint w m.im_anchor)
        c.co_indexes;
      P.uint w c.co_size)
    ~unpickle:(fun ~version:_ r ->
      let co_schema = P.read_string r in
      let co_indexes =
        P.read_list r (fun r ->
            let im_name = P.read_string r in
            let im_impl = Indexer.impl_of_byte (P.read_byte r) in
            let im_unique = P.read_bool r in
            let im_anchor = P.read_uint r in
            { im_name; im_impl; im_unique; im_anchor })
      in
      let co_size = P.read_uint r in
      { co_schema; co_indexes; co_size })
    ()

let root_name name = "tdb.collection:" ^ name

(* ------------------------------------------------------------------ *)
(* Transactions                                                        *)
(* ------------------------------------------------------------------ *)

type iter_token = { it_coll : oid; mutable it_open : bool }

type t = {
  txn : Object_store.txn;
  nshards : int; (* shard width of the underlying store (1 = unsharded) *)
  mutable iters : iter_token list; (* all iterators opened in this txn *)
}

let begin_ (os : Object_store.t) : t =
  {
    txn = Object_store.begin_ os;
    nshards = Tdb_chunk.Shard_store.shards (Object_store.chunk_store os);
    iters = [];
  }

(** Escape hatch to the object-store transaction (for objects that live
    outside any collection). Using it to write *collection* objects breaks
    iterator insensitivity — don't. *)
let txn (ct : t) : Object_store.txn = ct.txn

let open_iters_on ct coll_oid = List.filter (fun it -> it.it_open && Int.equal it.it_coll coll_oid) ct.iters

(* ------------------------------------------------------------------ *)
(* Collection handles                                                  *)
(* ------------------------------------------------------------------ *)

type 'a collection = {
  coll_oid : oid;
  cls : 'a Obj_class.t;
  coll_shard : int option; (* allocation affinity under a sharded store *)
  indexers : (string, 'a Indexer.generic) Hashtbl.t; (* registered extractors *)
}

(** The shard a collection's fresh allocations are routed to. Purely a
    placement hint: existing chunks stay wherever they were allocated (a
    chunk id encodes its shard), so the hint needs no persistence — it is
    recomputed (or overridden) each time the collection is opened. *)
let shard_of ?shard (ct : t) ~(name : string) : int option =
  if ct.nshards <= 1 then None
  else
    match shard with
    | Some s ->
        if s < 0 || s >= ct.nshards then
          invalid_arg (Printf.sprintf "Cstore: shard %d out of range [0, %d)" s ct.nshards);
        Some s
    | None ->
        (* placement must be stable across OCaml versions, so never
           Hashtbl.hash: rows of a reopened collection must keep landing
           on the shard its existing rows live on *)
        Some (Gkey.hash_bytes name mod ct.nshards)

let collection_shard (c : 'a collection) : int option = c.coll_shard

(* Route allocations inside [f] to the collection's shard. An affinity the
   caller already pinned on the transaction (via
   {!Object_store.set_alloc_shard}) takes precedence — it expresses a
   row-level placement decision the collection-level hint must not
   override. *)
let with_shard ct (c : 'a collection) (f : unit -> 'r) : 'r =
  match c.coll_shard with
  | None -> f ()
  | Some _ as s -> (
      match Object_store.alloc_shard ct.txn with
      | Some _ -> f ()
      | None -> (
          Object_store.set_alloc_shard ct.txn s;
          (* the txn may already be dead if [f] aborted it *)
          let restore () = try Object_store.set_alloc_shard ct.txn None with Object_store.Stale_ref -> () in
          match f () with
          | v ->
              restore ();
              v
          | exception exn ->
              restore ();
              raise exn))

let meta_ro ct (c : 'a collection) : coll_obj = Object_store.deref (Object_store.open_readonly ct.txn coll_cls c.coll_oid)
let meta_rw ct (c : 'a collection) : coll_obj = Object_store.deref (Object_store.open_writable ct.txn coll_cls c.coll_oid)

let find_meta (m : coll_obj) (name : string) : index_meta =
  match List.find_opt (fun im -> String.equal im.im_name name) m.co_indexes with
  | Some im -> im
  | None -> raise (Unknown_index name)

(** Every collection keeps at least one index (the [Last_index] guard on
    [drop_index] preserves the invariant); the first one is used to
    enumerate members. *)
let first_index (m : coll_obj) : index_meta =
  match m.co_indexes with im :: _ -> im | [] -> invalid_arg "collection has no indexes"

let generic_of (c : 'a collection) (name : string) : 'a Indexer.generic =
  match Hashtbl.find_opt c.indexers name with Some g -> g | None -> raise (Missing_indexer name)

let ops_of_generic (Indexer.Generic ix) (im : index_meta) : Index.ops =
  Index.ops_of ~index_name:ix.Indexer.name ~unique:im.im_unique ~impl:im.im_impl ix.Indexer.key

(** All (meta, generic, ops) for maintenance across every index. *)
let all_indexes ct (c : 'a collection) : (index_meta * 'a Indexer.generic * Index.ops) list =
  let m = meta_ro ct c in
  List.map
    (fun im ->
      let g = generic_of c im.im_name in
      (im, g, ops_of_generic g im))
    m.co_indexes

(** Current key bytes of [v] for every index. With [skip_immutable], keys
    the application declared immutable are omitted (they can always be
    recomputed from the current value — the paper's snapshot-storage
    optimization). *)
let snapshot_keys ?(skip_immutable = false) ct (c : 'a collection) (v : 'a) : (string * string) list =
  List.filter_map
    (fun (im, g, _) ->
      if skip_immutable && Indexer.generic_immutable g then None
      else Some (im.im_name, Indexer.generic_key_bytes g v))
    (all_indexes ct c)

(* --- creation / opening --- *)

let register_indexer (c : 'a collection) (ix : ('a, 'k) Indexer.t) : unit =
  Hashtbl.replace c.indexers ix.Indexer.name (Indexer.Generic ix)

(** Create a named collection with a single initial index (paper Figure 5:
    createCollection). Under a sharded store the collection's objects and
    index nodes are routed to [shard] (default: hash of the name). *)
let create_collection ?shard ct ~(name : string) ~(schema : 'a Obj_class.t) (ix : ('a, 'k) Indexer.t) : 'a collection =
  if Object_store.root ct.txn (root_name name) <> None then
    invalid_arg (Printf.sprintf "collection %S already exists" name);
  let c =
    { coll_oid = 0; cls = schema; coll_shard = shard_of ?shard ct ~name; indexers = Hashtbl.create 4 }
  in
  let coll_oid =
    with_shard ct c (fun () ->
        let anchor = Index.create_anchor ct.txn ix.Indexer.impl in
        let co =
          {
            co_schema = schema.Obj_class.name;
            co_indexes =
              [ { im_name = ix.Indexer.name; im_impl = ix.Indexer.impl; im_unique = ix.Indexer.unique; im_anchor = anchor } ];
            co_size = 0;
          }
        in
        Object_store.insert ct.txn coll_cls co)
  in
  Object_store.set_root ct.txn (root_name name) (Some coll_oid);
  let c = { c with coll_oid } in
  register_indexer c ix;
  c

(** Open an existing named collection. Indexers must be re-registered
    (extractor functions cannot persist): pass them in [indexers], or let
    queries register theirs on the fly — but updates through iterators need
    the extractors of *all* persisted indexes for deferred maintenance, so
    a missing one raises {!Missing_indexer} at that point. *)
let open_collection ?shard ?(indexers : 'a Indexer.generic list = []) ct ~(name : string)
    ~(schema : 'a Obj_class.t) : 'a collection =
  match Object_store.root ct.txn (root_name name) with
  | None -> invalid_arg (Printf.sprintf "unknown collection %S" name)
  | Some coll_oid ->
      let m = Object_store.deref (Object_store.open_readonly ct.txn coll_cls coll_oid) in
      if not (String.equal m.co_schema schema.Obj_class.name) then
        raise (Obj_class.Type_mismatch { expected = schema.Obj_class.name; actual = m.co_schema });
      let c = { coll_oid; cls = schema; coll_shard = shard_of ?shard ct ~name; indexers = Hashtbl.create 4 } in
      List.iter (fun (Indexer.Generic ix) -> register_indexer c ix) indexers;
      c

let collection_exists ct ~(name : string) : bool = Object_store.root ct.txn (root_name name) <> None

(* --- queries & iterators --- *)

type 'a iterator = {
  ct : t;
  coll : 'a collection;
  token : iter_token;
  items : oid array; (* materialized result set: insensitive by construction *)
  mutable pos : int;
  (* deferred maintenance state *)
  touched : (oid, 'a * (string * string) list) Hashtbl.t; (* oid -> value, pre-update keys *)
  mutable deleted : (oid * (string * string) list) list;
}

let make_iter ct (c : 'a collection) (oids : oid list) : 'a iterator =
  let token = { it_coll = c.coll_oid; it_open = true } in
  ct.iters <- token :: ct.iters;
  { ct; coll = c; token; items = Array.of_list oids; pos = 0; touched = Hashtbl.create 8; deleted = [] }

(** Scan query over any index (B-tree scans in key order). *)
let scan ct (c : 'a collection) (ix : ('a, 'k) Indexer.t) : 'a iterator =
  register_indexer c ix;
  let m = meta_ro ct c in
  let im = find_meta m ix.Indexer.name in
  make_iter ct c (Index.scan ct.txn (ops_of_generic (Indexer.Generic ix) im) im.im_anchor)

(** Exact-match query. *)
let exact ct (c : 'a collection) (ix : ('a, 'k) Indexer.t) (key : 'k) : 'a iterator =
  register_indexer c ix;
  let m = meta_ro ct c in
  let im = find_meta m ix.Indexer.name in
  make_iter ct c
    (Index.exact ct.txn (ops_of_generic (Indexer.Generic ix) im) im.im_anchor ~key:(Gkey.to_bytes ix.Indexer.key key))

(** Range query, inclusive on both ends; [None] leaves a side open. *)
let range ct (c : 'a collection) (ix : ('a, 'k) Indexer.t) ~(min : 'k option) ~(max : 'k option) : 'a iterator =
  register_indexer c ix;
  let m = meta_ro ct c in
  let im = find_meta m ix.Indexer.name in
  make_iter ct c
    (Index.range ct.txn (ops_of_generic (Indexer.Generic ix) im) im.im_anchor
       ~min:(Option.map (Gkey.to_bytes ix.Indexer.key) min)
       ~max:(Option.map (Gkey.to_bytes ix.Indexer.key) max))

(* --- iterator operations --- *)

let check_open (it : 'a iterator) = if not (it.token.it_open) then raise Iterator_closed

let at_end (it : 'a iterator) : bool =
  check_open it;
  it.pos >= Array.length it.items

let advance (it : 'a iterator) : unit =
  check_open it;
  if it.pos < Array.length it.items then it.pos <- it.pos + 1

let current_oid (it : 'a iterator) : oid =
  check_open it;
  if at_end it then invalid_arg "Iterator: past the end";
  it.items.(it.pos)

(** Read-only view of the current object. *)
let read (it : 'a iterator) : 'a =
  Object_store.deref (Object_store.open_readonly it.ct.txn it.coll.cls (current_oid it))

(** Writable view of the current object. Takes the pre-update key snapshot
    on first access (Section 5.2.3) and requires this to be the only open
    iterator on the collection (constraint 2). *)
let write (it : 'a iterator) : 'a =
  let oid = current_oid it in
  (match open_iters_on it.ct it.coll.coll_oid with
  | [ tok ] when tok == it.token -> ()
  | _ -> raise Concurrent_iterators);
  let v = Object_store.deref (Object_store.open_writable it.ct.txn it.coll.cls oid) in
  if not (Hashtbl.mem it.touched oid) then
    Hashtbl.replace it.touched oid (v, snapshot_keys ~skip_immutable:true it.ct it.coll v);
  v

(** Delete the current object from the collection (and the store); index
    maintenance is deferred to close like any other update. *)
let delete (it : 'a iterator) : unit =
  let oid = current_oid it in
  (match open_iters_on it.ct it.coll.coll_oid with
  | [ tok ] when tok == it.token -> ()
  | _ -> raise Concurrent_iterators);
  let keys =
    match Hashtbl.find_opt it.touched oid with
    | Some (v, pre) ->
        (* the index holds the pre-update keys; immutable ones were not
           snapshotted and are recomputed from the value *)
        let full = snapshot_keys it.ct it.coll v in
        List.map (fun (n, k) -> (n, Option.value ~default:k (List.assoc_opt n pre))) full
    | None ->
        let v = Object_store.deref (Object_store.open_writable it.ct.txn it.coll.cls oid) in
        snapshot_keys it.ct it.coll v
  in
  Hashtbl.remove it.touched oid;
  it.deleted <- (oid, keys) :: it.deleted

(** Close the iterator and apply all deferred index maintenance. Objects
    whose updates now violate a unique index are removed from the
    collection and reported via {!Unique_violation}. *)
let close (it : 'a iterator) : unit =
  if it.token.it_open then begin
    it.token.it_open <- false;
    if Hashtbl.length it.touched = 0 && it.deleted = [] then ()
    else with_shard it.ct it.coll @@ fun () ->
    begin
    let indexes = all_indexes it.ct it.coll in
    (* deletions *)
    List.iter
      (fun (oid, keys) ->
        List.iter
          (fun (im, _, ops) -> Index.delete it.ct.txn ops im.im_anchor ~key:(List.assoc im.im_name keys) ~oid)
          indexes;
        Object_store.remove it.ct.txn oid)
      it.deleted;
    it.deleted <- [];
    (* updates: compare pre/post keys per index *)
    let violators = ref [] in
    Hashtbl.iter
      (fun oid (v, pre_keys) ->
        let post_keys = snapshot_keys it.ct it.coll v in
        let pre_of im post =
          (* immutable indexes were not snapshotted: their key cannot have
             changed, so the current key doubles as the old one *)
          match List.assoc_opt im.im_name pre_keys with Some k -> k | None -> post
        in
        let changed =
          List.filter_map
            (fun (im, _, ops) ->
              let post = List.assoc im.im_name post_keys in
              let pre = pre_of im post in
              if String.equal pre post then None else Some (im, ops, pre, post))
            indexes
        in
        (* phase 1: retract old keys *)
        List.iter (fun (im, ops, pre, _) -> Index.delete it.ct.txn ops im.im_anchor ~key:pre ~oid) changed;
        (* phase 2: insert new keys; eject the object on a violation *)
        let rec reinsert done_ = function
          | [] -> ()
          | (im, ops, _, post) :: rest -> (
              match Index.insert it.ct.txn ops im.im_anchor ~key:post ~oid with
              | () -> reinsert ((im, ops, post) :: done_) rest
              | exception Index.Duplicate_key { index; _ } ->
                  (* undo this object's phase-2 inserts *)
                  List.iter (fun (im, ops, post) -> Index.delete it.ct.txn ops im.im_anchor ~key:post ~oid) done_;
                  (* retract it from unchanged indexes too *)
                  List.iter
                    (fun (im, _, ops) ->
                      let post = List.assoc im.im_name post_keys in
                      let pre = pre_of im post in
                      if String.equal pre post then Index.delete it.ct.txn ops im.im_anchor ~key:pre ~oid)
                    indexes;
                  Object_store.remove it.ct.txn oid;
                  violators := (index, oid) :: !violators )
        in
        reinsert [] changed)
      it.touched;
    Hashtbl.reset it.touched;
    match !violators with
    | [] -> ()
    | (index, _) :: _ as vs -> raise (Unique_violation { index; removed = List.map snd vs })
    end
  end

(* --- collection-level operations --- *)

(** Insert an object into the collection. Indexes are updated immediately;
    a unique violation raises at once (paper Figure 6) and leaves the
    collection unchanged. Returns the object's id. *)
let insert ct (c : 'a collection) (v : 'a) : oid =
  with_shard ct c (fun () ->
      let indexes = all_indexes ct c in
      let oid = Object_store.insert ct.txn c.cls v in
      let applied = ref [] in
      (try
         List.iter
           (fun (im, g, ops) ->
             let key = Indexer.generic_key_bytes g v in
             Index.insert ct.txn ops im.im_anchor ~key ~oid;
             applied := (im, ops, key) :: !applied)
           indexes
       with Index.Duplicate_key _ as exn ->
         List.iter (fun (im, ops, key) -> Index.delete ct.txn ops im.im_anchor ~key ~oid) !applied;
         Object_store.remove ct.txn oid;
         raise exn);
      oid)

(** Number of objects in the collection (maintained by the index anchors,
    so inserts do not dirty the collection meta-object itself). *)
let size ct (c : 'a collection) : int =
  let m = meta_ro ct c in
  match m.co_indexes with [] -> 0 | im :: _ -> Index.count ct.txn im.im_anchor

(** Create an additional index, populating it from the existing objects.
    Raises {!Index.Duplicate_key} (and drops the half-built index) if a
    unique index would cover duplicate keys (paper Figure 6). *)
let create_index ct (c : 'a collection) (ix : ('a, 'k) Indexer.t) : unit =
  with_shard ct c (fun () ->
  let m = meta_rw ct c in
  if List.exists (fun im -> String.equal im.im_name ix.Indexer.name) m.co_indexes then
    invalid_arg (Printf.sprintf "index %S already exists" ix.Indexer.name);
  register_indexer c ix;
  let anchor = Index.create_anchor ct.txn ix.Indexer.impl in
  let im = { im_name = ix.Indexer.name; im_impl = ix.Indexer.impl; im_unique = ix.Indexer.unique; im_anchor = anchor } in
  let ops = ops_of_generic (Indexer.Generic ix) im in
  (* populate via the first existing index *)
  let first = first_index m in
  let first_ops = ops_of_generic (generic_of c first.im_name) first in
  let members = Index.scan ct.txn first_ops first.im_anchor in
  (try
     List.iter
       (fun oid ->
         let v = Object_store.deref (Object_store.open_readonly ct.txn c.cls oid) in
         Index.insert ct.txn ops anchor ~key:(Indexer.key_bytes ix v) ~oid)
       members
   with Index.Duplicate_key _ as exn ->
     Index.drop ct.txn ops anchor;
     Hashtbl.remove c.indexers ix.Indexer.name;
     raise exn);
  m.co_indexes <- m.co_indexes @ [ im ])

(** Remove an index. Raises {!Last_index} if it is the only one (paper
    Figure 6). *)
let remove_index ct (c : 'a collection) ~(name : string) : unit =
  let m = meta_rw ct c in
  if List.length m.co_indexes <= 1 then raise Last_index;
  let im = find_meta m name in
  let g = generic_of c name in
  Index.drop ct.txn (ops_of_generic g im) im.im_anchor;
  m.co_indexes <- List.filter (fun i -> not (String.equal i.im_name name)) m.co_indexes;
  Hashtbl.remove c.indexers name

(** Remove a named collection along with all objects previously inserted
    into it (paper Figure 5: removeCollection). *)
let remove_collection ct ~(name : string) ~(schema : 'a Obj_class.t) ~(indexers : 'a Indexer.generic list) : unit =
  let c = open_collection ct ~name ~schema in
  List.iter (fun (Indexer.Generic ix) -> register_indexer c ix) indexers;
  let m = meta_ro ct c in
  let first = first_index m in
  let first_ops = ops_of_generic (generic_of c first.im_name) first in
  let members = Index.scan ct.txn first_ops first.im_anchor in
  List.iter (fun oid -> Object_store.remove ct.txn oid) members;
  List.iter
    (fun im ->
      let g = generic_of c im.im_name in
      Index.drop ct.txn (ops_of_generic g im) im.im_anchor)
    m.co_indexes;
  Object_store.remove ct.txn c.coll_oid;
  Object_store.set_root ct.txn (root_name name) None

(* --- transaction termination --- *)

(** Commit: closes any iterators still open (applying their deferred index
    maintenance — a {!Unique_violation} aborts the commit) and commits the
    underlying transaction in the requested durability mode. *)
let commit ?durable (ct : t) : unit =
  if List.exists (fun tok -> tok.it_open) ct.iters then
    invalid_arg "Cstore.commit: close all iterators first";
  Object_store.commit ?durable ct.txn

let abort (ct : t) : unit =
  List.iter (fun tok -> tok.it_open <- false) ct.iters;
  Object_store.abort ct.txn

(** Run [f] in a collection transaction. *)
let with_ctxn ?durable (os : Object_store.t) (f : t -> 'r) : 'r =
  let ct = begin_ os in
  match f ct with
  | v ->
      commit ?durable ct;
      v
  | exception exn ->
      (try abort ct with _ -> ());
      raise exn
