(** Indexers (paper Section 5.1.2/5.2.1): the one type-parameterized class
    in the collection store.

    An indexer identifies an index on a collection: a *pure* extractor
    function producing the key from an object (functional indexing, so keys
    can be variable-sized or derived — e.g. [view_count + print_count]),
    whether keys are unique, and the index implementation (B-tree, dynamic
    hash table, or list). *)

type impl = Btree | Hash | List

let impl_to_byte = function Btree -> 0 | Hash -> 1 | List -> 2
let impl_of_byte = function 0 -> Btree | 1 -> Hash | 2 -> List | n -> invalid_arg (Printf.sprintf "bad index impl %d" n)
let impl_name = function Btree -> "btree" | Hash -> "hash" | List -> "list"

type ('a, 'k) t = {
  name : string; (* unique within a collection, persistent *)
  key : 'k Gkey.t;
  extract : 'a -> 'k; (* must be pure *)
  unique : bool;
  impl : impl;
  immutable : bool;
      (* declared never to change for a stored object: the collection store
         skips recording such keys in the pre-update snapshot (paper
         Section 5.2.3's storage optimization) *)
}

let make ~(name : string) ~(key : 'k Gkey.t) ~(extract : 'a -> 'k) ?(unique = false) ?(impl = Btree)
    ?(immutable = false) () : ('a, 'k) t =
  { name; key; extract; unique; impl; immutable }

(** Extract a key in canonical pickled form. *)
let key_bytes (ix : ('a, 'k) t) (v : 'a) : string = Gkey.to_bytes ix.key (ix.extract v)

(** The GenericIndexer view: everything the collection needs without the
    key type. *)
type 'a generic = Generic : ('a, 'k) t -> 'a generic

let generic_name (Generic ix) = ix.name
let generic_impl (Generic ix) = ix.impl
let generic_unique (Generic ix) = ix.unique
let generic_key_bytes (Generic ix) (v : 'a) = key_bytes ix v
let generic_cmp (Generic ix) = Gkey.bytes_compare ix.key
let generic_immutable (Generic ix) = ix.immutable
