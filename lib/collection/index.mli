(** Persistent index structures (paper Section 5.2.4): B-tree, dynamic
    hash table (Larson's linear hashing) and list. Index meta-objects —
    anchors, B-tree nodes, hash buckets and directory segments, list
    nodes — are ordinary objects in the object store, so they are cached,
    two-phase locked and committed transactionally like everything else.
    Indexes map canonical key bytes (see {!Gkey}) to object ids; every
    index is reached through an {e anchor} object whose oid never changes,
    so collection metadata survives root splits and directory growth. *)

open Tdb_objstore

type oid = Object_store.oid

exception Duplicate_key of { index : string; key : string }
exception Unsupported_query of string

(** Key-type-erased operations bundle built from a typed indexer. *)
type ops = {
  index_name : string;
  cmp : string -> string -> int;
  unique : bool;
  impl : Indexer.impl;
}

val ops_of : index_name:string -> unique:bool -> impl:Indexer.impl -> 'k Gkey.t -> ops

val create_anchor : Object_store.txn -> Indexer.impl -> oid
(** Fresh empty index; returns the anchor's oid. *)

val insert : Object_store.txn -> ops -> oid -> key:string -> oid:oid -> unit
(** @raise Duplicate_key when [ops.unique] and the key is present. *)

val delete : Object_store.txn -> ops -> oid -> key:string -> oid:oid -> unit
(** Remove one (key, oid) pair; no-op if absent. *)

val exact : Object_store.txn -> ops -> oid -> key:string -> oid list

val scan : Object_store.txn -> ops -> oid -> oid list
(** B-tree: key order; hash: bucket order; list: insertion order. *)

val range : Object_store.txn -> ops -> oid -> min:string option -> max:string option -> oid list
(** Inclusive range. @raise Unsupported_query on a hash index. *)

val count : Object_store.txn -> oid -> int

val drop : Object_store.txn -> ops -> oid -> unit
(** Remove every meta-object of the index, anchor included. *)
