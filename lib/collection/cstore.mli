(** The collection store (paper Section 5): keyed access to collections of
    objects with automatically maintained functional indexes.

    A collection is a set of objects of one schema class sharing one or
    more indexes; every object belongs to at most one collection. Keys are
    produced by the pure extractor functions of registered {!Indexer}s, so
    they can be variable-sized or derived values, and indexes can be added
    or removed without rebuilding the database.

    Queries return {e insensitive} iterators — an iterator never observes
    the effects of updates made through it (no Halloween anomalies). The
    four constraints of Section 5.2.2 are enforced at runtime:
    + writable references to collection objects exist only by
      dereferencing an iterator;
    + an iterator may be dereferenced writable only while it is the sole
      open iterator on its collection ({!Concurrent_iterators});
    + iterators advance in one direction only;
    + index maintenance is deferred until {!close}, using pre/post key
      snapshots (Section 5.2.3) — so duplicate keys in unique indexes can
      surface only at close, where the offending objects are removed from
      the collection and reported ({!Unique_violation}). *)

type oid = Tdb_objstore.Object_store.oid

exception Unknown_index of string
(** The named index does not exist on the collection. *)

exception Missing_indexer of string
(** A persisted index has no registered {!Indexer} (extractors cannot be
    stored; re-register them when opening the collection). *)

exception Last_index
(** A collection must keep at least one index (paper Figure 6). *)

exception Concurrent_iterators
exception Iterator_closed
exception Not_in_collection of oid

exception Unique_violation of { index : string; removed : oid list }
(** Raised at iterator close: the listed objects were removed from the
    collection so the application can re-integrate them. *)

(** {1 Transactions} (paper Figure 5: CTransaction) *)

type t
(** A collection-store transaction. *)

val begin_ : Tdb_objstore.Object_store.t -> t

val commit : ?durable:bool -> t -> unit
(** @raise Invalid_argument while iterators are still open. *)

val abort : t -> unit
val with_ctxn : ?durable:bool -> Tdb_objstore.Object_store.t -> (t -> 'a) -> 'a

val txn : t -> Tdb_objstore.Object_store.txn
(** Escape hatch to the object-store transaction (for objects outside any
    collection). Writing {e collection} objects through it would break
    iterator insensitivity — don't. *)

(** {1 Collections} *)

type 'a collection
(** Handle to a collection of schema class ['a]. *)

val create_collection :
  ?shard:int -> t -> name:string -> schema:'a Tdb_objstore.Obj_class.t -> ('a, 'k) Indexer.t -> 'a collection
(** Create a named collection with one initial index. Under a sharded
    chunk store ({!Tdb_chunk.Shard_store} width > 1) the collection's
    objects and index nodes are allocated on shard [shard] (default: a
    hash of the collection name), so a whole collection commits through a
    single shard's log and group-commit barrier. The affinity is a
    placement hint, not persistent state: a chunk id encodes the shard it
    was allocated on, so existing objects are unaffected by the hint used
    at any later open. Ignored on an unsharded store. *)

val open_collection :
  ?shard:int ->
  ?indexers:'a Indexer.generic list -> t -> name:string -> schema:'a Tdb_objstore.Obj_class.t -> 'a collection
(** Open an existing collection, re-registering its indexers. [shard]
    overrides the allocation affinity as in {!create_collection}.
    @raise Tdb_objstore.Obj_class.Type_mismatch if [schema] differs from the stored one. *)

val collection_shard : 'a collection -> int option
(** The shard new allocations for this collection are routed to; [None]
    on an unsharded store. *)

val collection_exists : t -> name:string -> bool

val remove_collection :
  t -> name:string -> schema:'a Tdb_objstore.Obj_class.t -> indexers:'a Indexer.generic list -> unit
(** Remove the collection {e and} every object in it (paper Figure 5). *)

val register_indexer : 'a collection -> ('a, 'k) Indexer.t -> unit

val insert : t -> 'a collection -> 'a -> oid
(** Insert an object; all indexes update immediately.
    @raise Index.Duplicate_key on a unique violation (collection unchanged). *)

val size : t -> 'a collection -> int

val create_index : t -> 'a collection -> ('a, 'k) Indexer.t -> unit
(** Add an index, populated from the existing objects.
    @raise Index.Duplicate_key if a unique index would cover duplicates
    (the half-built index is dropped). *)

val remove_index : t -> 'a collection -> name:string -> unit
(** @raise Last_index when it is the only index. *)

(** {1 Queries and iterators} (paper Figure 6) *)

type 'a iterator

val scan : t -> 'a collection -> ('a, 'k) Indexer.t -> 'a iterator
(** Everything, in the index's natural order (B-tree: key order). *)

val exact : t -> 'a collection -> ('a, 'k) Indexer.t -> 'k -> 'a iterator

val range : t -> 'a collection -> ('a, 'k) Indexer.t -> min:'k option -> max:'k option -> 'a iterator
(** Inclusive range; [None] leaves a side open.
    @raise Index.Unsupported_query on a hash index. *)

val at_end : 'a iterator -> bool
val advance : 'a iterator -> unit
val current_oid : 'a iterator -> oid

val read : 'a iterator -> 'a
(** Read-only view of the current object. *)

val write : 'a iterator -> 'a
(** Writable view; takes the pre-update key snapshot on first access and
    requires this to be the only open iterator on the collection. Mutate
    the returned value in place. *)

val delete : 'a iterator -> unit
(** Remove the current object from collection and store (applied at
    {!close} like other updates). *)

val close : 'a iterator -> unit
(** Apply all deferred index maintenance.
    @raise Unique_violation when updated keys collide in a unique index
    (violators are removed and listed). *)
