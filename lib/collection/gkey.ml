(** Index key types (the paper's GenericKey hierarchy).

    A key type bundles ordering and a *canonical* pickled form: equal keys
    must pickle to equal bytes (hash indexes bucket by the bytes; B-trees
    order by [compare] on the unpickled values). All standard TDB key types
    below are canonical. *)

module type KEY = sig
  type k

  val name : string
  val compare : k -> k -> int
  val pickle : Tdb_pickle.Pickle.writer -> k -> unit
  val unpickle : Tdb_pickle.Pickle.reader -> k
end

type 'k t = (module KEY with type k = 'k)

let to_bytes (type k) ((module K) : k t) (v : k) : string =
  let w = Tdb_pickle.Pickle.writer () in
  K.pickle w v;
  Tdb_pickle.Pickle.contents w

let of_bytes (type k) ((module K) : k t) (s : string) : k =
  let r = Tdb_pickle.Pickle.reader s in
  let v = K.unpickle r in
  Tdb_pickle.Pickle.expect_end r;
  v

(** Byte-level comparator that decodes and orders — what the index
    implementations use, so their node classes stay monomorphic (the
    paper's "all templatization is limited to a single, relatively small
    class, the Indexer"). *)
let bytes_compare (type k) ((module K) : k t) : string -> string -> int =
 fun a b ->
  let ra = Tdb_pickle.Pickle.reader a and rb = Tdb_pickle.Pickle.reader b in
  K.compare (K.unpickle ra) (K.unpickle rb)

(* --- standard key types --- *)

let int : int t =
  (module struct
    type k = int

    let name = "int"
    let compare = Int.compare
    let pickle = Tdb_pickle.Pickle.int
    let unpickle = Tdb_pickle.Pickle.read_int
  end)

let string : string t =
  (module struct
    type k = string

    let name = "string"
    let compare = String.compare
    let pickle = Tdb_pickle.Pickle.string
    let unpickle = Tdb_pickle.Pickle.read_string
  end)

let float : float t =
  (module struct
    type k = float

    let name = "float"
    let compare = Float.compare
    let pickle = Tdb_pickle.Pickle.float
    let unpickle = Tdb_pickle.Pickle.read_float
  end)

(** Composite key: lexicographic pair, e.g. (usage count, good id). *)
let pair (type a b) ((module A) : a t) ((module B) : b t) : (a * b) t =
  (module struct
    type k = a * b

    let name = Printf.sprintf "pair(%s,%s)" A.name B.name

    let compare (a1, b1) (a2, b2) =
      match A.compare a1 a2 with 0 -> B.compare b1 b2 | c -> c

    let pickle w (a, b) =
      A.pickle w a;
      B.pickle w b

    let unpickle r =
      let a = A.unpickle r in
      let b = B.unpickle r in
      (a, b)
  end)

(** Deterministic, persistence-stable hash of a key's canonical bytes
    (FNV-1a style, with the offset basis truncated to OCaml's 63-bit int):
    OCaml's [Hashtbl.hash] is not stable across versions, so the dynamic
    hash index uses this instead. *)
let hash_bytes (s : string) : int =
  let h = ref 0x1bf29ce484222325 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x100000001b3)
    s;
  !h land max_int
