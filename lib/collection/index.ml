(** Persistent index structures (paper Section 5.2.4): B-tree, dynamic hash
    table (Larson's linear hashing) and list.

    Index meta-objects — anchors, B-tree nodes, hash buckets, list nodes —
    are ordinary objects in the object store, so they are cached, locked
    (two-phase, like any other object) and committed transactionally for
    free. All storage management of the collection store is delegated here:
    indexes map canonical key bytes to object ids.

    Every index is reached through an *anchor* object whose oid is stored
    in the collection; the anchor survives root splits and bucket
    directory growth, so the collection's metadata never changes during
    updates. *)

open Tdb_objstore

type oid = Object_store.oid

exception Duplicate_key of { index : string; key : string }
exception Unsupported_query of string

let max_leaf = 32 (* max keys per B-tree node *)
let bucket_split_load = 4 (* linear hashing: avg entries per bucket before split *)
let max_list_node = 64

(* ------------------------------------------------------------------ *)
(* Persistent classes                                                  *)
(* ------------------------------------------------------------------ *)

type anchor = {
  mutable a_root : oid option; (* btree root / list head *)
  mutable a_count : int; (* entries in the index *)
  mutable a_buckets : oid list; (* hash: bucket directory (reversed-append order) *)
  mutable a_level : int; (* hash: current level *)
  mutable a_next : int; (* hash: next bucket to split *)
}

let anchor_cls : anchor Obj_class.t =
  let module P = Tdb_pickle.Pickle in
  Obj_class.define ~name:"tdb.index.anchor"
    ~pickle:(fun w a ->
      P.option w (fun w v -> P.uint w v) a.a_root;
      P.uint w a.a_count;
      P.list w (fun w v -> P.uint w v) a.a_buckets;
      P.uint w a.a_level;
      P.uint w a.a_next)
    ~unpickle:(fun ~version:_ r ->
      let a_root = P.read_option r P.read_uint in
      let a_count = P.read_uint r in
      let a_buckets = P.read_list r P.read_uint in
      let a_level = P.read_uint r in
      let a_next = P.read_uint r in
      { a_root; a_count; a_buckets; a_level; a_next })
    ()

type btree_node = {
  mutable leaf : bool;
  mutable keys : string list; (* canonical key bytes, sorted *)
  mutable vals : oid list list; (* leaf: oids per key *)
  mutable kids : oid list; (* internal: |kids| = |keys| + 1 *)
  mutable next : oid option; (* leaf chain for range scans *)
}

let btree_cls : btree_node Obj_class.t =
  let module P = Tdb_pickle.Pickle in
  Obj_class.define ~name:"tdb.index.btree_node"
    ~pickle:(fun w n ->
      P.bool w n.leaf;
      P.list w P.string n.keys;
      P.list w (fun w l -> P.list w (fun w v -> P.uint w v) l) n.vals;
      P.list w (fun w v -> P.uint w v) n.kids;
      P.option w (fun w v -> P.uint w v) n.next)
    ~unpickle:(fun ~version:_ r ->
      let leaf = P.read_bool r in
      let keys = P.read_list r P.read_string in
      let vals = P.read_list r (fun r -> P.read_list r P.read_uint) in
      let kids = P.read_list r P.read_uint in
      let next = P.read_option r P.read_uint in
      { leaf; keys; vals; kids; next })
    ()

type bucket = { mutable pairs : (string * oid) list }

(** Hash-directory segment: the bucket directory is chunked so the anchor
    stays small no matter how many buckets the table grows (a flat
    directory would make the anchor a multi-kilobyte object rewritten on
    every split). *)
type dir_seg = { mutable d_slots : oid list (* bucket oids, newest last *) }

let dir_seg_cap = 256

let bucket_cls : bucket Obj_class.t =
  let module P = Tdb_pickle.Pickle in
  Obj_class.define ~name:"tdb.index.bucket"
    ~pickle:(fun w b ->
      P.list w
        (fun w (k, o) ->
          P.string w k;
          P.uint w o)
        b.pairs)
    ~unpickle:(fun ~version:_ r ->
      let pairs =
        P.read_list r (fun r ->
            let k = P.read_string r in
            let o = P.read_uint r in
            (k, o))
      in
      { pairs })
    ()

let dir_seg_cls : dir_seg Obj_class.t =
  let module P = Tdb_pickle.Pickle in
  Obj_class.define ~name:"tdb.index.dir_seg"
    ~pickle:(fun w d -> P.list w (fun w o -> P.uint w o) d.d_slots)
    ~unpickle:(fun ~version:_ r -> { d_slots = P.read_list r P.read_uint })
    ()

type list_node = { mutable pairs : (string * oid) list; mutable lnext : oid option }

let list_cls : list_node Obj_class.t =
  let module P = Tdb_pickle.Pickle in
  Obj_class.define ~name:"tdb.index.list_node"
    ~pickle:(fun w n ->
      P.list w
        (fun w (k, o) ->
          P.string w k;
          P.uint w o)
        n.pairs;
      P.option w (fun w v -> P.uint w v) n.lnext)
    ~unpickle:(fun ~version:_ r ->
      let pairs =
        P.read_list r (fun r ->
            let k = P.read_string r in
            let o = P.read_uint r in
            (k, o))
      in
      let lnext = P.read_option r P.read_uint in
      { pairs; lnext })
    ()

(* ------------------------------------------------------------------ *)
(* Common plumbing                                                     *)
(* ------------------------------------------------------------------ *)

type ops = {
  index_name : string;
  cmp : string -> string -> int; (* canonical-bytes comparator *)
  unique : bool;
  impl : Indexer.impl;
}

let ops_of (type k) ~(index_name : string) ~(unique : bool) ~(impl : Indexer.impl) (key : k Gkey.t) : ops =
  { index_name; cmp = Gkey.bytes_compare key; unique; impl }

let ro x cls oid = Object_store.deref (Object_store.open_readonly x cls oid)
let rw x cls oid = Object_store.deref (Object_store.open_writable x cls oid)

(** Create a fresh, empty anchor for an index of the given implementation;
    returns its oid. *)
let create_anchor (x : Object_store.txn) (impl : Indexer.impl) : oid =
  match impl with
  | Indexer.Btree | Indexer.List ->
      Object_store.insert x anchor_cls { a_root = None; a_count = 0; a_buckets = []; a_level = 0; a_next = 0 }
  | Indexer.Hash ->
      let nbuckets = 4 in
      let buckets = List.init nbuckets (fun _ -> Object_store.insert x bucket_cls { pairs = [] }) in
      let seg = Object_store.insert x dir_seg_cls { d_slots = buckets } in
      Object_store.insert x anchor_cls { a_root = None; a_count = 0; a_buckets = [ seg ]; a_level = 2; a_next = 0 }

(* ------------------------------------------------------------------ *)
(* B-tree                                                              *)
(* ------------------------------------------------------------------ *)

(** A structurally impossible index shape: a persisted node contradicts
    its invariants (arity, split results). Distinct from [Tamper_detected]
    — the chunk layer has already validated the bytes. *)
let corrupt what = failwith ("Index: corrupt index structure: " ^ what)

let nth_or l i what = match List.nth_opt l i with Some v -> v | None -> corrupt what

module Btree = struct
  (* Position of the child to descend into for [key]:
     key < keys[0] -> kid 0; keys[i] <= key < keys[i+1] -> kid i+1. *)
  let child_slot cmp keys key =
    let rec go i = function [] -> i | k :: rest -> if cmp key k < 0 then i else go (i + 1) rest in
    go 0 keys

  let nth_kid kids i = nth_or kids i "kid slot out of range"

  let split_list l at =
    let rec go acc i = function
      | rest when Int.equal i at -> (List.rev acc, rest)
      | [] -> (List.rev acc, [])
      | x :: rest -> go (x :: acc) (i + 1) rest
    in
    go [] 0 l

  (** Insert into the subtree at [noid]; returns [Some (sep, right_oid)]
      when the node split. *)
  let rec insert_rec x ops noid key oid : (string * oid) option =
    let n = rw x btree_cls noid in
    if n.leaf then begin
      (* find position / existing key *)
      let rec place ks vs =
        match (ks, vs) with
        | [], [] -> ([ key ], [ [ oid ] ])
        | k :: krest, v :: vrest ->
            let c = ops.cmp key k in
            if c = 0 then
              if ops.unique then raise (Duplicate_key { index = ops.index_name; key })
              else (k :: krest, (oid :: v) :: vrest)
            else if c < 0 then (key :: k :: krest, [ oid ] :: v :: vrest)
            else begin
              let ks', vs' = place krest vrest in
              (k :: ks', v :: vs')
            end
        | _ -> assert false
      in
      let ks, vs = place n.keys n.vals in
      n.keys <- ks;
      n.vals <- vs;
      if List.length n.keys <= max_leaf then None
      else begin
        let at = List.length n.keys / 2 in
        let lk, rk = split_list n.keys at in
        let lv, rv = split_list n.vals at in
        match rk with
        | [] -> corrupt "leaf split produced no right keys"
        | sep :: _ ->
            let right =
              Object_store.insert x btree_cls { leaf = true; keys = rk; vals = rv; kids = []; next = n.next }
            in
            n.keys <- lk;
            n.vals <- lv;
            n.next <- Some right;
            Some (sep, right)
      end
    end
    else begin
      let slot = child_slot ops.cmp n.keys key in
      match insert_rec x ops (nth_kid n.kids slot) key oid with
      | None -> None
      | Some (sep, right) ->
          let lk, rk = split_list n.keys slot in
          let lkid, rkid = split_list n.kids (slot + 1) in
          n.keys <- lk @ (sep :: rk);
          n.kids <- lkid @ (right :: rkid);
          if List.length n.keys <= max_leaf then None
          else begin
            let at = List.length n.keys / 2 in
            let lk, rest = split_list n.keys at in
            match rest with
            | [] -> corrupt "internal split produced no separator"
            | sep :: rk ->
                let lkid, rkid = split_list n.kids (at + 1) in
                let right =
                  Object_store.insert x btree_cls { leaf = false; keys = rk; vals = []; kids = rkid; next = None }
                in
                n.keys <- lk;
                n.kids <- lkid;
                Some (sep, right)
          end
    end

  let insert x ops anchor_oid key oid : unit =
    let a = rw x anchor_cls anchor_oid in
    (match a.a_root with
    | None ->
        let root = Object_store.insert x btree_cls { leaf = true; keys = [ key ]; vals = [ [ oid ] ]; kids = []; next = None } in
        a.a_root <- Some root
    | Some root -> (
        match insert_rec x ops root key oid with
        | None -> ()
        | Some (sep, right) ->
            let new_root =
              Object_store.insert x btree_cls { leaf = false; keys = [ sep ]; vals = []; kids = [ root; right ]; next = None }
            in
            a.a_root <- Some new_root ));
    a.a_count <- a.a_count + 1

  (** Remove (key, oid); no rebalancing — embedded-scale lazy deletion. *)
  let delete x ops anchor_oid key oid : unit =
    let a = rw x anchor_cls anchor_oid in
    let rec go noid =
      let n = ro x btree_cls noid in
      if n.leaf then begin
        let n = rw x btree_cls noid in
        let changed = ref false in
        let rec strip ks vs =
          match (ks, vs) with
          | [], [] -> ([], [])
          | k :: krest, v :: vrest ->
              if ops.cmp key k = 0 then begin
                let v' = List.filter (fun o -> not (Int.equal o oid)) v in
                changed := true;
                if v' = [] then (krest, vrest) else (k :: krest, v' :: vrest)
              end
              else begin
                let ks', vs' = strip krest vrest in
                (k :: ks', v :: vs')
              end
          | _ -> assert false
        in
        let ks, vs = strip n.keys n.vals in
        n.keys <- ks;
        n.vals <- vs;
        !changed
      end
      else go (nth_kid n.kids (child_slot ops.cmp n.keys key))
    in
    match a.a_root with
    | None -> ()
    | Some root -> if go root then a.a_count <- max 0 (a.a_count - 1)

  let exact x ops anchor_oid key : oid list =
    let a = ro x anchor_cls anchor_oid in
    let rec go noid =
      let n = ro x btree_cls noid in
      if n.leaf then
        let rec find ks vs =
          match (ks, vs) with
          | k :: krest, v :: vrest -> if ops.cmp key k = 0 then List.rev v else find krest vrest
          | _ -> []
        in
        find n.keys n.vals
      else go (nth_kid n.kids (child_slot ops.cmp n.keys key))
    in
    match a.a_root with None -> [] | Some root -> go root

  (** Leftmost leaf whose range may contain [min] (or the leftmost leaf). *)
  let rec seek_leaf x ops noid (min : string option) : oid =
    let n = ro x btree_cls noid in
    if n.leaf then noid
    else
      let slot = match min with None -> 0 | Some k -> child_slot ops.cmp n.keys k in
      seek_leaf x ops (nth_kid n.kids slot) min

  (** In-order (key, oids) within [min, max] inclusive. *)
  let range x ops anchor_oid ~(min : string option) ~(max : string option) : (string * oid list) list =
    let a = ro x anchor_cls anchor_oid in
    match a.a_root with
    | None -> []
    | Some root ->
        let acc = ref [] in
        let rec walk leaf_oid =
          let n = ro x btree_cls leaf_oid in
          let stop = ref false in
          List.iter2
            (fun k v ->
              let below = match min with None -> false | Some m -> ops.cmp k m < 0 in
              let above = match max with None -> false | Some m -> ops.cmp k m > 0 in
              if above then stop := true
              else if not below then acc := (k, List.rev v) :: !acc)
            n.keys n.vals;
          if not !stop then match n.next with Some next -> walk next | None -> ()
        in
        walk (seek_leaf x ops root min);
        List.rev !acc

  (** All index node oids (for dropping the index). *)
  let node_oids x anchor_oid : oid list =
    let a = ro x anchor_cls anchor_oid in
    let acc = ref [] in
    let rec go noid =
      acc := noid :: !acc;
      let n = ro x btree_cls noid in
      if not n.leaf then List.iter go n.kids
    in
    (match a.a_root with None -> () | Some root -> go root);
    !acc
end

(* ------------------------------------------------------------------ *)
(* Dynamic hash table (linear hashing, Larson 1988)                    *)
(* ------------------------------------------------------------------ *)

module Hashidx = struct
  (* number of buckets follows from (level, next): m + next *)
  let nbuckets (a : anchor) : int = (1 lsl a.a_level) + a.a_next

  let address (a : anchor) (key : string) : int =
    let h = Gkey.hash_bytes key in
    let m = 1 lsl a.a_level in
    let slot = h mod m in
    if slot < a.a_next then h mod (2 * m) else slot

  let bucket_oid x (a : anchor) (i : int) : oid =
    let seg = ro x dir_seg_cls (nth_or a.a_buckets (i / dir_seg_cap) "directory segment missing") in
    nth_or seg.d_slots (i mod dir_seg_cap) "bucket slot missing"

  let append_bucket x (a : anchor) (b : oid) : unit =
    let last = nth_or a.a_buckets (List.length a.a_buckets - 1) "directory has no segments" in
    let seg = ro x dir_seg_cls last in
    if List.length seg.d_slots < dir_seg_cap then begin
      let seg = rw x dir_seg_cls last in
      seg.d_slots <- seg.d_slots @ [ b ]
    end
    else begin
      let fresh = Object_store.insert x dir_seg_cls { d_slots = [ b ] } in
      a.a_buckets <- a.a_buckets @ [ fresh ]
    end

  let insert x ops anchor_oid key oid : unit =
    let a = rw x anchor_cls anchor_oid in
    let b_oid = bucket_oid x a (address a key) in
    let b = rw x bucket_cls b_oid in
    if ops.unique && List.exists (fun (k, _) -> String.equal k key) b.pairs then
      raise (Duplicate_key { index = ops.index_name; key });
    b.pairs <- (key, oid) :: b.pairs;
    a.a_count <- a.a_count + 1;
    (* split when average load is exceeded *)
    if a.a_count > bucket_split_load * nbuckets a then begin
      let m = 1 lsl a.a_level in
      let victim_oid = bucket_oid x a a.a_next in
      let victim = rw x bucket_cls victim_oid in
      let fresh = Object_store.insert x bucket_cls { pairs = [] } in
      append_bucket x a fresh;
      let stay, move =
        List.partition (fun (k, _) -> Gkey.hash_bytes k mod (2 * m) = Gkey.hash_bytes k mod m) victim.pairs
      in
      victim.pairs <- stay;
      let freshb = rw x bucket_cls fresh in
      freshb.pairs <- move;
      a.a_next <- a.a_next + 1;
      if Int.equal a.a_next m then begin
        a.a_level <- a.a_level + 1;
        a.a_next <- 0
      end
    end

  let delete x _ops anchor_oid key oid : unit =
    let a = rw x anchor_cls anchor_oid in
    let b = rw x bucket_cls (bucket_oid x a (address a key)) in
    let before = List.length b.pairs in
    b.pairs <- List.filter (fun (k, o) -> not (String.equal k key && Int.equal o oid)) b.pairs;
    if List.length b.pairs < before then a.a_count <- max 0 (a.a_count - 1)

  let exact x _ops anchor_oid key : oid list =
    let a = ro x anchor_cls anchor_oid in
    let b = ro x bucket_cls (bucket_oid x a (address a key)) in
    List.rev (List.filter_map (fun (k, o) -> if String.equal k key then Some o else None) b.pairs)

  let all_buckets x (a : anchor) : oid list =
    List.concat_map (fun seg -> (ro x dir_seg_cls seg).d_slots) a.a_buckets

  let scan x anchor_oid : (string * oid) list =
    let a = ro x anchor_cls anchor_oid in
    List.concat_map (fun b_oid -> List.rev (ro x bucket_cls b_oid).pairs) (all_buckets x a)

  let node_oids x anchor_oid : oid list =
    let a = ro x anchor_cls anchor_oid in
    all_buckets x a @ a.a_buckets
end

(* ------------------------------------------------------------------ *)
(* List index                                                          *)
(* ------------------------------------------------------------------ *)

module Listidx = struct
  let insert x ops anchor_oid key oid : unit =
    let a = rw x anchor_cls anchor_oid in
    if ops.unique then begin
      (* linear uniqueness check *)
      let rec dup = function
        | None -> false
        | Some noid ->
            let n = ro x list_cls noid in
            List.exists (fun (k, _) -> String.equal k key) n.pairs || dup n.lnext
      in
      if dup a.a_root then raise (Duplicate_key { index = ops.index_name; key })
    end;
    (match a.a_root with
    | Some head_oid when List.length (ro x list_cls head_oid).pairs < max_list_node ->
        let head = rw x list_cls head_oid in
        head.pairs <- (key, oid) :: head.pairs
    | old_head ->
        let fresh = Object_store.insert x list_cls { pairs = [ (key, oid) ]; lnext = old_head } in
        a.a_root <- Some fresh);
    a.a_count <- a.a_count + 1

  let delete x _ops anchor_oid key oid : unit =
    let a = rw x anchor_cls anchor_oid in
    let rec go = function
      | None -> false
      | Some noid ->
          let n = ro x list_cls noid in
          if List.exists (fun (k, o) -> String.equal k key && Int.equal o oid) n.pairs then begin
            let n = rw x list_cls noid in
            n.pairs <- List.filter (fun (k, o) -> not (String.equal k key && Int.equal o oid)) n.pairs;
            true
          end
          else go n.lnext
    in
    if go a.a_root then a.a_count <- max 0 (a.a_count - 1)

  let scan x anchor_oid : (string * oid) list =
    let a = ro x anchor_cls anchor_oid in
    let rec go acc = function
      | None -> List.concat (List.rev acc)
      | Some noid ->
          let n = ro x list_cls noid in
          go (List.rev n.pairs :: acc) n.lnext
    in
    (* preserve insertion order: nodes are prepended, pairs are prepended *)
    let rec nodes acc = function
      | None -> acc
      | Some noid ->
          let n = ro x list_cls noid in
          nodes (List.rev n.pairs :: acc) n.lnext
    in
    ignore go;
    List.concat (nodes [] a.a_root)

  let exact x _ops anchor_oid key : oid list =
    scan x anchor_oid |> List.filter_map (fun (k, o) -> if String.equal k key then Some o else None)

  let node_oids x anchor_oid : oid list =
    let a = ro x anchor_cls anchor_oid in
    let rec go acc = function
      | None -> acc
      | Some noid -> go (noid :: acc) (ro x list_cls noid).lnext
    in
    go [] a.a_root
end

(* ------------------------------------------------------------------ *)
(* Dispatch                                                            *)
(* ------------------------------------------------------------------ *)

let insert x (ops : ops) anchor_oid ~key ~oid : unit =
  match ops.impl with
  | Indexer.Btree -> Btree.insert x ops anchor_oid key oid
  | Indexer.Hash -> Hashidx.insert x ops anchor_oid key oid
  | Indexer.List -> Listidx.insert x ops anchor_oid key oid

let delete x (ops : ops) anchor_oid ~key ~oid : unit =
  match ops.impl with
  | Indexer.Btree -> Btree.delete x ops anchor_oid key oid
  | Indexer.Hash -> Hashidx.delete x ops anchor_oid key oid
  | Indexer.List -> Listidx.delete x ops anchor_oid key oid

let exact x (ops : ops) anchor_oid ~key : oid list =
  match ops.impl with
  | Indexer.Btree -> Btree.exact x ops anchor_oid key
  | Indexer.Hash -> Hashidx.exact x ops anchor_oid key
  | Indexer.List -> Listidx.exact x ops anchor_oid key

(** Full scan: B-tree yields key order; hash and list yield their natural
    (bucket / insertion) order. *)
let scan x (ops : ops) anchor_oid : oid list =
  match ops.impl with
  | Indexer.Btree -> Btree.range x ops anchor_oid ~min:None ~max:None |> List.concat_map snd
  | Indexer.Hash -> Hashidx.scan x anchor_oid |> List.map snd
  | Indexer.List -> Listidx.scan x anchor_oid |> List.map snd

(** Range query [min, max] (inclusive, either side open). B-tree only —
    the hash index cannot enumerate in key order (paper: range queries use
    ordered indexes), and list indexes fall back to a filtered scan. *)
let range x (ops : ops) anchor_oid ~(min : string option) ~(max : string option) : oid list =
  match ops.impl with
  | Indexer.Btree -> Btree.range x ops anchor_oid ~min ~max |> List.concat_map snd
  | Indexer.Hash -> raise (Unsupported_query "range query on a hash index")
  | Indexer.List ->
      Listidx.scan x anchor_oid
      |> List.filter_map (fun (k, o) ->
             let below = match min with None -> false | Some m -> ops.cmp k m < 0 in
             let above = match max with None -> false | Some m -> ops.cmp k m > 0 in
             if below || above then None else Some o)

let count x anchor_oid : int = (ro x anchor_cls anchor_oid).a_count

(** Drop all meta-objects of an index (anchor included). *)
let drop x (ops : ops) anchor_oid : unit =
  let nodes =
    match ops.impl with
    | Indexer.Btree -> Btree.node_oids x anchor_oid
    | Indexer.Hash -> Hashidx.node_oids x anchor_oid
    | Indexer.List -> Listidx.node_oids x anchor_oid
  in
  List.iter (fun o -> Object_store.remove x o) nodes;
  Object_store.remove x anchor_oid
