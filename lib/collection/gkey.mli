(** Index key types (the paper's GenericKey hierarchy).

    A key type bundles ordering and a {e canonical} pickled form: equal
    keys must pickle to equal bytes (hash indexes bucket by the bytes;
    B-trees order by [compare] on the decoded values). All key types below
    are canonical; composite application keys built with {!pair} inherit
    canonicity from their components. *)

module type KEY = sig
  type k

  val name : string
  val compare : k -> k -> int
  val pickle : Tdb_pickle.Pickle.writer -> k -> unit
  val unpickle : Tdb_pickle.Pickle.reader -> k
end

type 'k t = (module KEY with type k = 'k)

val to_bytes : 'k t -> 'k -> string
val of_bytes : 'k t -> string -> 'k

val bytes_compare : 'k t -> string -> string -> int
(** Comparator on canonical bytes (decode, then [compare]) — what keeps the
    index node classes monomorphic (paper Section 5.2.1: "all
    templatization is limited to ... the Indexer"). *)

(** {1 Standard key types} *)

val int : int t
val string : string t
val float : float t

val pair : 'a t -> 'b t -> ('a * 'b) t
(** Lexicographic composite key. *)

val hash_bytes : string -> int
(** Deterministic, persistence-stable hash of canonical key bytes (FNV-1a
    style) — OCaml's [Hashtbl.hash] is not stable across versions. *)
