(** Indexers (paper Sections 5.1.2 and 5.2.1): the one type-parameterized
    component of the collection store.

    An indexer identifies an index on a collection: a {e pure} extractor
    producing the key from an object (functional indexing — keys can be
    variable-sized or derived, e.g. [view_count + print_count]), whether
    keys are unique, the index implementation, and optionally a promise
    that the key never changes for a stored object (which lets the
    collection store skip its pre-update snapshot, Section 5.2.3). *)

(** Index implementation (paper Section 5.2.4). *)
type impl =
  | Btree  (** ordered; supports scan (in key order), exact and range *)
  | Hash  (** Larson linear hashing; exact and unordered scan *)
  | List  (** insertion-ordered; cheap appends, linear queries *)

val impl_to_byte : impl -> int
val impl_of_byte : int -> impl
val impl_name : impl -> string

type ('a, 'k) t = {
  name : string;  (** unique within a collection, persistent *)
  key : 'k Gkey.t;
  extract : 'a -> 'k;  (** must be pure *)
  unique : bool;
  impl : impl;
  immutable : bool;
}

val make :
  name:string ->
  key:'k Gkey.t ->
  extract:('a -> 'k) ->
  ?unique:bool ->
  ?impl:impl ->
  ?immutable:bool ->
  unit ->
  ('a, 'k) t

val key_bytes : ('a, 'k) t -> 'a -> string
(** Extracted key in canonical pickled form. *)

(** {1 GenericIndexer} — the key-type-erased view the collection uses. *)

type 'a generic = Generic : ('a, 'k) t -> 'a generic

val generic_name : 'a generic -> string
val generic_impl : 'a generic -> impl
val generic_unique : 'a generic -> bool
val generic_key_bytes : 'a generic -> 'a -> string
val generic_cmp : 'a generic -> string -> string -> int
val generic_immutable : 'a generic -> bool
