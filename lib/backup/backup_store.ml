(** The backup store (paper Figure 1 and Section 2): creates and securely
    restores full and incremental database backups through the archival
    store.

    Guarantees, per the paper:
    - backups are created from copy-on-write chunk-store snapshots, so
      foreground transactions are not blocked and incrementals are cheap
      (Merkle-pruned diffs of two snapshots);
    - only *valid* backups restore: every stream is encrypted and MAC'd
      under keys derived from the platform secret store;
    - incremental backups restore only in the same sequence as they were
      created: each stream carries its id, its base id, and a hash chain
      over the cumulative contents, all checked during restore.

    Backup-chain state (last id, chain value, the snapshot to diff against)
    persists in the database itself at the reserved chunk id 0, so it
    participates in the chunk store's own tamper protection. *)

open Tdb_chunk

exception Invalid_backup of string

let invalid fmt = Printf.ksprintf (fun s -> raise (Invalid_backup s)) fmt

let state_cid = 0
let magic = "TDBB"

type kind = Full | Incremental of int (* base backup id *)

type header = { id : int; kind : kind; seq : int (* snapshot seq, informational *) }

(* persistent backup-chain state, stored at [state_cid] *)
type chain_state = { last_id : int; chain : string; base_snapshot : int option }

type t = {
  cs : Shard_store.t;
  archive : Tdb_platform.Archival_store.t;
  cipher : Tdb_crypto.Cbc.cipher;
  mac_key : string;
  iv_gen : Tdb_crypto.Drbg.t;
}

(* --- chain state persistence --- *)

let encode_state (s : chain_state) : string =
  let module P = Tdb_pickle.Pickle in
  let w = P.writer () in
  P.uint w s.last_id;
  P.string w s.chain;
  P.option w (fun w v -> P.uint w v) s.base_snapshot;
  P.contents w

let decode_state (data : string) : chain_state =
  let module P = Tdb_pickle.Pickle in
  let r = P.reader data in
  let last_id = P.read_uint r in
  let chain = P.read_string r in
  let base_snapshot = P.read_option r P.read_uint in
  P.expect_end r;
  { last_id; chain; base_snapshot }

let load_state t : chain_state =
  match Shard_store.read t.cs state_cid with
  | data -> decode_state data
  | exception Types.Not_written _ -> { last_id = 0; chain = "genesis"; base_snapshot = None }

(* Mirror the chain position into the chunk store's stats record, so
   operators (tdb_cli status / remote-status) see the backup/replication
   position without opening the archive. *)
let publish_stats t (s : chain_state) : unit =
  (* shard 0's record: Shard_store.stats copies backup_* fields from it *)
  let st = Chunk_store.stats (Shard_store.shard_store t.cs 0) in
  st.Chunk_store.backup_last_id <- s.last_id;
  st.Chunk_store.backup_chain <- s.chain;
  st.Chunk_store.backup_base_snapshot <- (match s.base_snapshot with Some v -> v | None -> -1)

let save_state t (s : chain_state) : unit =
  Shard_store.write t.cs state_cid (encode_state s);
  Shard_store.commit ~durable:true t.cs;
  publish_stats t s

let chain_state t : chain_state = load_state t

let create ~(secret : Tdb_platform.Secret_store.t) ~(archive : Tdb_platform.Archival_store.t)
    (cs : Shard_store.t) : t =
  let t =
    {
      cs;
      archive;
      cipher =
        Tdb_crypto.Cbc.make
          (module Tdb_crypto.Aes)
          ~secret:(Tdb_platform.Secret_store.derive_len secret "backup-cipher" Tdb_crypto.Aes.key_size);
      mac_key = Tdb_platform.Secret_store.derive secret "backup-mac";
      iv_gen = Tdb_crypto.Drbg.create ~seed:(Tdb_platform.Secret_store.derive secret "backup-iv");
    }
  in
  publish_stats t (load_state t);
  t

let archive t = t.archive

(* --- stream framing --- *)

let encode_header (h : header) : string =
  let module P = Tdb_pickle.Pickle in
  let w = P.writer () in
  P.uint w 1 (* format version *);
  P.uint w h.id;
  (match h.kind with
  | Full -> P.byte w 0
  | Incremental base ->
      P.byte w 1;
      P.uint w base);
  P.uint w h.seq;
  P.contents w

let decode_header (s : string) : header =
  let module P = Tdb_pickle.Pickle in
  let r = P.reader s in
  (match P.read_uint r with 1 -> () | v -> invalid "unsupported backup format %d" v);
  let id = P.read_uint r in
  let kind = match P.read_byte r with 0 -> Full | 1 -> Incremental (P.read_uint r) | k -> invalid "bad kind %d" k in
  let seq = P.read_uint r in
  P.expect_end r;
  { id; kind; seq }

(** body := changed chunks + removed ids (removed is empty for full). *)
let encode_body ~(changed : (int * string) list) ~(removed : int list) : string =
  let module P = Tdb_pickle.Pickle in
  let w = P.writer () in
  P.list w
    (fun w (cid, data) ->
      P.uint w cid;
      P.string w data)
    changed;
  P.list w (fun w cid -> P.uint w cid) removed;
  P.contents w

let decode_body (s : string) : (int * string) list * int list =
  let module P = Tdb_pickle.Pickle in
  let r = P.reader s in
  let changed =
    P.read_list r (fun r ->
        let cid = P.read_uint r in
        let data = P.read_string r in
        (cid, data))
  in
  let removed = P.read_list r P.read_uint in
  P.expect_end r;
  (changed, removed)

let frame t (h : header) (body : string) ~(chain : string) : string * string =
  (* returns (stream, new_chain) *)
  let header = encode_header h in
  let iv = Tdb_crypto.Drbg.generate t.iv_gen (Tdb_crypto.Cbc.block_size t.cipher) in
  let sealed = Tdb_crypto.Cbc.encrypt t.cipher ~iv body in
  let new_chain = Tdb_crypto.Hmac.sha256 ~key:t.mac_key (chain ^ header ^ body) in
  let module P = Tdb_pickle.Pickle in
  let w = P.writer () in
  Buffer.add_string w.P.buf magic;
  P.string w header;
  P.string w sealed;
  P.string w new_chain;
  let pre_mac = P.contents w in
  let mac = Tdb_crypto.Hmac.sha256 ~key:t.mac_key pre_mac in
  (pre_mac ^ mac, new_chain)

type parsed = { p_header : header; p_changed : (int * string) list; p_removed : int list; p_chain : string }

let unframe_with ~(cipher : Tdb_crypto.Cbc.cipher) ~(mac_key : string) (stream : string) : parsed =
  let n = String.length stream in
  let mac_len = Tdb_crypto.Sha256.digest_size in
  if n < 4 + mac_len then invalid "backup stream truncated";
  if not (String.equal (String.sub stream 0 4) magic) then invalid "bad backup magic";
  let body_part = String.sub stream 0 (n - mac_len) in
  let mac = String.sub stream (n - mac_len) mac_len in
  if not (Tdb_crypto.Ct.equal_string mac (Tdb_crypto.Hmac.sha256 ~key:mac_key body_part)) then
    invalid "backup MAC verification failed";
  let module P = Tdb_pickle.Pickle in
  let r = P.reader ~off:4 ~len:(String.length body_part - 4) body_part in
  let header_s = P.read_string r in
  let sealed = P.read_string r in
  let p_chain = P.read_string r in
  P.expect_end r;
  let p_header = decode_header header_s in
  let body = try Tdb_crypto.Cbc.decrypt cipher sealed with Tdb_crypto.Cbc.Bad_padding -> invalid "backup body corrupt" in
  let p_changed, p_removed = decode_body body in
  { p_header; p_changed; p_removed; p_chain }

let name_of (h : header) : string =
  Printf.sprintf "tdb-%06d-%s" h.id (match h.kind with Full -> "full" | Incremental _ -> "incr")

let stream_name = name_of

(** Parse an archive entry name back to (id, kind). Names are untrusted
    hints for ordering the publish stream; the follower verifies every
    frame's MAC and chain before believing anything. *)
let parse_name (name : string) : (int * [ `Full | `Incremental ]) option =
  let n = String.length name in
  if n < 4 + 1 + 5 || not (String.equal (String.sub name 0 4) "tdb-") then None
  else
    let digits = String.sub name 4 (n - 9) in
    let kind = match String.sub name (n - 5) 5 with "-full" -> Some `Full | "-incr" -> Some `Incremental | _ -> None in
    match (int_of_string_opt digits, kind) with
    | Some id, Some k when id > 0 -> Some (id, k)
    | _ -> None

(* --- backup creation --- *)

(** Create a full backup; resets the incremental chain. Returns the backup
    id. *)
let backup_full t : int =
  let st = load_state t in
  let snap = Shard_store.snapshot t.cs in
  let changed =
    Shard_store.fold_snapshot t.cs snap ~init:[] ~f:(fun acc cid data ->
        if Int.equal cid state_cid then acc else (cid, data) :: acc)
  in
  let id = st.last_id + 1 in
  let header = { id; kind = Full; seq = Shard_store.snapshot_seq t.cs snap } in
  let body = encode_body ~changed:(List.rev changed) ~removed:[] in
  let stream, new_chain = frame t header body ~chain:"genesis" in
  Tdb_platform.Archival_store.put t.archive ~name:(name_of header) stream;
  (match st.base_snapshot with Some old -> Shard_store.release_snapshot t.cs old | None -> ());
  save_state t { last_id = id; chain = new_chain; base_snapshot = Some snap };
  id

(** Create an incremental backup against the previous backup (full or
    incremental). Falls back to a full backup when there is no base. *)
let backup_incremental t : int =
  let st = load_state t in
  match st.base_snapshot with
  | None -> backup_full t
  | Some base ->
      let snap = Shard_store.snapshot t.cs in
      let changed = ref [] and removed = ref [] in
      Shard_store.diff_snapshots t.cs ~old_id:base ~new_id:snap
        ~changed:(fun cid data -> if not (Int.equal cid state_cid) then changed := (cid, data) :: !changed)
        ~removed:(fun cid -> if not (Int.equal cid state_cid) then removed := cid :: !removed);
      let id = st.last_id + 1 in
      let header = { id; kind = Incremental st.last_id; seq = Shard_store.snapshot_seq t.cs snap } in
      let body = encode_body ~changed:(List.rev !changed) ~removed:(List.rev !removed) in
      let stream, new_chain = frame t header body ~chain:st.chain in
      Tdb_platform.Archival_store.put t.archive ~name:(name_of header) stream;
      Shard_store.release_snapshot t.cs base;
      save_state t { last_id = id; chain = new_chain; base_snapshot = Some snap };
      id

(* --- restore --- *)

(** List the backups present in an archive, sorted by id. Streams that do
    not parse and validate are skipped (the archival store is untrusted). *)
let scan_archive ~(secret : Tdb_platform.Secret_store.t) (archive : Tdb_platform.Archival_store.t) :
    (header * parsed) list =
  let cipher =
    Tdb_crypto.Cbc.make
      (module Tdb_crypto.Aes)
      ~secret:(Tdb_platform.Secret_store.derive_len secret "backup-cipher" Tdb_crypto.Aes.key_size)
  in
  let mac_key = Tdb_platform.Secret_store.derive secret "backup-mac" in
  Tdb_platform.Archival_store.list archive
  |> List.filter_map (fun name ->
         match Tdb_platform.Archival_store.get archive ~name with
         | None -> None
         | Some stream -> (
             match unframe_with ~cipher ~mac_key stream with
             | parsed -> Some (parsed.p_header, parsed)
             | exception Invalid_backup _ -> None ))
  |> List.sort (fun (a, _) (b, _) -> Int.compare a.id b.id)

(** Validated restore into a *fresh* chunk store: applies the newest full
    backup with id <= [upto] (default: newest overall) followed by its
    incrementals in sequence, re-verifying the hash chain across streams.

    @raise Invalid_backup if no valid full backup exists, the sequence has
    gaps, or any chain value does not match. *)
let restore ~(secret : Tdb_platform.Secret_store.t) ~(archive : Tdb_platform.Archival_store.t)
    ?(upto : int option) ~(into : Shard_store.t) () : int =
  let backups = scan_archive ~secret archive in
  let limit = match upto with Some u -> u | None -> List.fold_left (fun m (h, _) -> max m h.id) 0 backups in
  let full =
    List.fold_left
      (fun best (h, p) -> match h.kind with Full when h.id <= limit -> Some (h, p) | _ -> best)
      None backups
  in
  let full_h, full_p = match full with Some f -> f | None -> invalid "no valid full backup available" in
  let mac_key = Tdb_platform.Secret_store.derive secret "backup-mac" in
  (* verify the full backup's chain start *)
  let expected = Tdb_crypto.Hmac.sha256 ~key:mac_key ("genesis" ^ encode_header full_h ^ encode_body ~changed:full_p.p_changed ~removed:full_p.p_removed) in
  if not (Tdb_crypto.Ct.equal_string expected full_p.p_chain) then invalid "full backup chain mismatch";
  let apply (p : parsed) =
    (match
       List.iter (fun (cid, data) -> Shard_store.restore_chunk into cid data) p.p_changed
     with
    | () -> ()
    | exception Types.Chunk_too_large { cid; size; max } ->
        (* a decoded-but-impossible record: leave the target store clean *)
        Shard_store.abort_batch into;
        invalid "backup record for chunk %d is %d bytes (limit %d)" cid size max);
    List.iter
      (fun cid -> match Shard_store.deallocate into cid with () -> () | exception Types.Not_allocated _ -> ())
      p.p_removed;
    Shard_store.commit ~durable:true into
  in
  apply full_p;
  let rec chain_through last_id chain applied =
    if last_id >= limit then applied
    else
      match
        List.find_opt
          (fun (h, _) ->
            h.id = last_id + 1
            && match h.kind with Incremental base -> Int.equal base last_id | Full -> false)
          backups
      with
      | None ->
          if List.exists (fun (h, _) -> h.id > last_id && h.id <= limit) backups then
            invalid "incremental sequence broken after backup %d" last_id
          else applied
      | Some (h, p) ->
          let expected =
            Tdb_crypto.Hmac.sha256 ~key:mac_key
              (chain ^ encode_header h ^ encode_body ~changed:p.p_changed ~removed:p.p_removed)
          in
          if not (Tdb_crypto.Ct.equal_string expected p.p_chain) then
            invalid "chain mismatch at backup %d (out-of-sequence or forged)" h.id;
          apply p;
          chain_through h.id p.p_chain (applied + 1)
  in
  let incrementals = chain_through full_h.id full_p.p_chain 0 in
  ignore incrementals;
  Shard_store.checkpoint into;
  full_h.id + incrementals

(* --- replication ingest --- *)

(** Verify one archive stream against this store's persisted chain state,
    then apply it atomically — the follower side of replication.

    Verification strictly precedes mutation: the stream's MAC, its header,
    and its chain value (recomputed from the persisted chain state) must
    all check out before a single chunk is touched. The apply itself is
    staged: every restored chunk, every deallocation *and the advanced
    chain state* land in one batch made durable by a single commit, so a
    crash at any point leaves the store at the previous consistent
    snapshot with a chain state that still matches it.

    A [Full] stream re-bootstraps the follower in place: live ids absent
    from the stream are deallocated in the same batch, so a stale follower
    converges without ever passing through an empty store. Fulls with
    [id <= last_id] are rejected — accepting one would let a replayed old
    archive roll the follower back.

    Returns the applied header (its [seq] is the primary commit sequence
    this follower now reflects).
    @raise Invalid_backup on any verification failure; the store is
    unchanged. *)
let apply_stream t (stream : string) : header =
  let p = unframe_with ~cipher:t.cipher ~mac_key:t.mac_key stream in
  let st = load_state t in
  let h = p.p_header in
  let base_chain =
    match h.kind with
    | Full ->
        if h.id <= st.last_id then
          invalid "full backup %d replayed against chain state %d (rollback refused)" h.id st.last_id;
        "genesis"
    | Incremental base ->
        if (not (Int.equal base st.last_id)) || not (Int.equal h.id (st.last_id + 1)) then
          invalid "incremental %d (base %d) does not extend chain state %d" h.id base st.last_id;
        st.chain
  in
  let expected =
    Tdb_crypto.Hmac.sha256 ~key:t.mac_key
      (base_chain ^ encode_header h ^ encode_body ~changed:p.p_changed ~removed:p.p_removed)
  in
  if not (Tdb_crypto.Ct.equal_string expected p.p_chain) then
    invalid "chain mismatch at backup %d (out-of-sequence or forged)" h.id;
  (try
     (match h.kind with
     | Full ->
         let keep = Hashtbl.create (List.length p.p_changed + 1) in
         List.iter (fun (cid, _) -> Hashtbl.replace keep cid ()) p.p_changed;
         List.iter
           (fun cid ->
             if (not (Hashtbl.mem keep cid)) && not (Int.equal cid state_cid) then
               match Shard_store.deallocate t.cs cid with () -> () | exception Types.Not_allocated _ -> ())
           (Shard_store.live_ids t.cs)
     | Incremental _ -> ());
     List.iter (fun (cid, data) -> Shard_store.restore_chunk t.cs cid data) p.p_changed;
     List.iter
       (fun cid -> match Shard_store.deallocate t.cs cid with () -> () | exception Types.Not_allocated _ -> ())
       p.p_removed
   with Types.Chunk_too_large { cid; size; max } ->
     Shard_store.abort_batch t.cs;
     invalid "backup record for chunk %d is %d bytes (limit %d)" cid size max);
  let st' = { last_id = h.id; chain = p.p_chain; base_snapshot = None } in
  Shard_store.restore_chunk t.cs state_cid (encode_state st');
  Shard_store.commit ~durable:true t.cs;
  publish_stats t st';
  h
