(** The backup store (paper Figure 1, Section 2): creates and securely
    restores full and incremental database backups via the archival store.

    Backups are built from copy-on-write chunk-store snapshots (foreground
    transactions keep running); incrementals are Merkle-pruned diffs of
    two snapshots, so their cost is proportional to what changed. Every
    stream is encrypted and MAC'd under keys derived from the platform
    secret store, and the sequence of backups is hash-chained: restore
    applies only a valid full backup followed by its incrementals {e in
    the order they were created} — gaps, reordering, tampering and foreign
    devices are all rejected ({!Invalid_backup}).

    Chain state (last id, chain value, base snapshot) persists inside the
    database itself at a reserved chunk id, under TDB's own tamper
    protection. *)

exception Invalid_backup of string

type t

type kind = Full | Incremental of int  (** base backup id *)

type header = {
  id : int;  (** backup id, dense and increasing *)
  kind : kind;
  seq : int;  (** primary commit sequence captured by the snapshot *)
}

type chain_state = {
  last_id : int;  (** 0 = no backups yet *)
  chain : string;  (** cumulative HMAC chain value ("genesis" before any) *)
  base_snapshot : int option;
      (** the snapshot the next incremental diffs against; [None] on
          followers (they never diff) and before the first full *)
}

val create :
  secret:Tdb_platform.Secret_store.t ->
  archive:Tdb_platform.Archival_store.t ->
  Tdb_chunk.Shard_store.t ->
  t
(** Also mirrors the persisted chain position into
    {!Tdb_chunk.Chunk_store.stats} ([backup_last_id] / [backup_chain] /
    [backup_base_snapshot]), as do all operations below that advance it. *)

val chain_state : t -> chain_state
(** The persisted chain position (reserved chunk id inside the store). *)

val archive : t -> Tdb_platform.Archival_store.t

val stream_name : header -> string
(** Canonical archive entry name for a stream with this header
    ([tdb-NNNNNN-full|incr]) — what {!parse_name} inverts. *)

val parse_name : string -> (int * [ `Full | `Incremental ]) option
(** Parse an archive entry name ([tdb-NNNNNN-full|incr]) to (id, kind) —
    an untrusted ordering hint for the publisher; consumers verify frames
    cryptographically before believing anything. *)

val backup_full : t -> int
(** Write a full backup; resets the incremental chain. Returns its id. *)

val backup_incremental : t -> int
(** Write an incremental against the previous backup (falls back to a full
    backup when there is no base). Returns its id. *)

val restore :
  secret:Tdb_platform.Secret_store.t ->
  archive:Tdb_platform.Archival_store.t ->
  ?upto:int ->
  into:Tdb_chunk.Shard_store.t ->
  unit ->
  int
(** Validated restore into a {e fresh} chunk store: applies the newest full
    backup with id ≤ [upto] (default: newest overall) and its incrementals
    in sequence, re-verifying MACs and the hash chain across streams.
    Returns the id of the last backup applied.
    @raise Invalid_backup on missing/forged/out-of-order streams, and on
    records too large for the target store's configuration (the batch is
    aborted, leaving the target clean). *)

val apply_stream : t -> string -> header
(** Replication ingest: verify one archive stream (MAC, header, hash chain
    recomputed from this store's persisted chain state) and apply it
    atomically — restored chunks, deallocations and the advanced chain
    state land in a single durable commit, so a crash mid-ingest leaves
    the store at the previous consistent snapshot. A [Full] stream
    re-bootstraps in place (live ids absent from it are deallocated in the
    same batch); fulls with [id <= last_id] are rejected to refuse replay
    rollback. Returns the applied header.
    @raise Invalid_backup on any verification failure (store unchanged). *)
