(** The backup store (paper Figure 1, Section 2): creates and securely
    restores full and incremental database backups via the archival store.

    Backups are built from copy-on-write chunk-store snapshots (foreground
    transactions keep running); incrementals are Merkle-pruned diffs of
    two snapshots, so their cost is proportional to what changed. Every
    stream is encrypted and MAC'd under keys derived from the platform
    secret store, and the sequence of backups is hash-chained: restore
    applies only a valid full backup followed by its incrementals {e in
    the order they were created} — gaps, reordering, tampering and foreign
    devices are all rejected ({!Invalid_backup}).

    Chain state (last id, chain value, base snapshot) persists inside the
    database itself at a reserved chunk id, under TDB's own tamper
    protection. *)

exception Invalid_backup of string

type t

val create :
  secret:Tdb_platform.Secret_store.t ->
  archive:Tdb_platform.Archival_store.t ->
  Tdb_chunk.Chunk_store.t ->
  t

val backup_full : t -> int
(** Write a full backup; resets the incremental chain. Returns its id. *)

val backup_incremental : t -> int
(** Write an incremental against the previous backup (falls back to a full
    backup when there is no base). Returns its id. *)

val restore :
  secret:Tdb_platform.Secret_store.t ->
  archive:Tdb_platform.Archival_store.t ->
  ?upto:int ->
  into:Tdb_chunk.Chunk_store.t ->
  unit ->
  int
(** Validated restore into a {e fresh} chunk store: applies the newest full
    backup with id ≤ [upto] (default: newest overall) and its incrementals
    in sequence, re-verifying MACs and the hash chain across streams.
    Returns the id of the last backup applied.
    @raise Invalid_backup on missing/forged/out-of-order streams, and on
    records too large for the target store's configuration (the batch is
    aborted, leaving the target clean). *)
