(** TDB — a trusted database system for Digital Rights Management.

    This is the top-level facade: it re-exports the four layers of the
    paper's architecture (chunk store, backup store, object store,
    collection store) and the platform abstractions, and provides the
    "embedded database" convenience API a DRM application links against:
    open a device, get typed transactional collections.

    {1 Layers}

    - {!Chunk_store} (with {!Chunk_config}): trusted, log-structured,
      encrypted + tamper/replay-evident storage of untyped chunks.
    - {!Backup_store}: validated full/incremental backups.
    - {!Object_store} / {!Obj_class}: typed, named C-style objects with
      transactions, strict 2PL and an object cache.
    - {!Cstore} / {!Indexer} / {!Gkey}: collections with automatically
      maintained functional indexes and insensitive iterators.

    {1 Quick start}

    {[
      let _attacker, device = Tdb.Device.in_memory ~seed:"dev" () in
      let db = Tdb.create device in
      Tdb.with_ctxn db (fun ct ->
          let meters =
            Tdb.Cstore.create_collection ct ~name:"meters" ~schema:meter_cls
              (Tdb.Indexer.make ~name:"id" ~key:Tdb.Gkey.int ~extract:(fun m -> m.id)
                 ~unique:true ~impl:Tdb.Indexer.Hash ())
          in
          ignore (Tdb.Cstore.insert ct meters { id = 1; views = 0 }))
    ]} *)

(* --- re-exports --- *)

module Crypto = struct
  module Sha1 = Tdb_crypto.Sha1
  module Sha256 = Tdb_crypto.Sha256
  module Hmac = Tdb_crypto.Hmac
  module Aes = Tdb_crypto.Aes
  module Xtea = Tdb_crypto.Xtea
  module Triple = Tdb_crypto.Triple
  module Cbc = Tdb_crypto.Cbc
  module Drbg = Tdb_crypto.Drbg
  module Hex = Tdb_crypto.Hex
end

module Pickle = Tdb_pickle.Pickle
module Untrusted_store = Tdb_platform.Untrusted_store
module Secret_store = Tdb_platform.Secret_store
module One_way_counter = Tdb_platform.One_way_counter
module Archival_store = Tdb_platform.Archival_store
module Chunk_config = Tdb_chunk.Config
module Chunk_types = Tdb_chunk.Types
module Chunk_store = Tdb_chunk.Chunk_store
module Shard_store = Tdb_chunk.Shard_store
module Backup_store = Tdb_backup.Backup_store
module Obj_class = Tdb_objstore.Obj_class
module Object_store = Tdb_objstore.Object_store
module Lock_manager = Tdb_objstore.Lock_manager
module Gkey = Tdb_collection.Gkey
module Indexer = Tdb_collection.Indexer
module Cstore = Tdb_collection.Cstore
module Proto = Tdb_server.Proto
module Server = Tdb_server.Server
module Client = Tdb_server.Client
module Group_commit = Tdb_server.Group_commit
module Replica = Tdb_replica.Replica

exception Tamper_detected = Tdb_chunk.Types.Tamper_detected

(* --- devices --- *)

(** A device bundles the platform facilities TDB needs (paper Figure 1):
    the untrusted store holding the database, the secret store, the one-way
    counter, and an archival store for backups. *)
module Device = struct
  type t = {
    store : Untrusted_store.t;  (** shard 0 *)
    secret : Secret_store.t;
    counter : One_way_counter.t;  (** shard 0 *)
    archive : Archival_store.t;
    extra : (Untrusted_store.t * One_way_counter.t) array;
        (** shards 1..n-1 when the database is sharded; [[||]] otherwise *)
  }

  let width (d : t) : int = 1 + Array.length d.extra
  let stores (d : t) : Untrusted_store.t array = Array.append [| d.store |] (Array.map fst d.extra)
  let counters (d : t) : One_way_counter.t array = Array.append [| d.counter |] (Array.map snd d.extra)

  (** Ephemeral in-memory device (tests, examples, simulations). Returns
      the attacker's handle to shard 0's untrusted store alongside. *)
  let in_memory ?(seed = "tdb-device") ?(shards = 1) () : Untrusted_store.Mem.handle * t =
    let mem, store = Untrusted_store.open_mem () in
    let _, counter = One_way_counter.open_mem () in
    let _, archive = Archival_store.open_mem () in
    let extra =
      Array.init (shards - 1) (fun _ ->
          let _, s = Untrusted_store.open_mem () in
          let _, c = One_way_counter.open_mem () in
          (s, c))
    in
    (mem, { store; secret = Secret_store.of_seed seed; counter; archive; extra })

  (* Shard [i > 0] lives in [db.i] / [counter.i] next to shard 0's plain
     [db] / [counter]. *)
  let shard_files dir i =
    if Int.equal i 0 then (Filename.concat dir "db", Filename.concat dir "counter")
    else (Filename.concat dir (Printf.sprintf "db.%d" i), Filename.concat dir (Printf.sprintf "counter.%d" i))

  (** Durable device rooted at a directory: [db] file, [counter] file,
      [secret] key file, [backups/] archive; shard [i] adds [db.i] and
      [counter.i]. When [shards] is omitted the width is detected from the
      [db.i] files present, falling back to [TDB_SHARDS] (default 1) for a
      fresh directory — so reopening a sharded database never needs the
      flag repeated. *)
  let at_dir ?shards (dir : string) : t =
    if not (Sys.file_exists dir) then Unix.mkdir dir 0o700;
    let n =
      match shards with
      | Some n ->
          if n < 1 then invalid_arg "Device.at_dir: shards must be >= 1";
          n
      | None ->
          if Sys.file_exists (Filename.concat dir "db") then begin
            let n = ref 1 in
            while Sys.file_exists (Filename.concat dir (Printf.sprintf "db.%d" !n)) do
              incr n
            done;
            !n
          end
          else Chunk_config.default_shards ()
    in
    let open_shard i =
      let db, ctr = shard_files dir i in
      (Untrusted_store.open_file db, One_way_counter.open_file ctr)
    in
    let store, counter = open_shard 0 in
    {
      store;
      secret = Secret_store.of_file (Filename.concat dir "secret");
      counter;
      archive = Archival_store.open_dir (Filename.concat dir "backups");
      extra = Array.init (n - 1) (fun i -> open_shard (i + 1));
    }
end

(* --- the embedded database --- *)

type t = {
  device : Device.t;
  chunks : Shard_store.t;
  objects : Object_store.t;
  backups : Backup_store.t;
}

let assemble ?(object_config = Object_store.default_config) device chunks =
  {
    device;
    chunks;
    objects = Object_store.of_shard_store ~config:object_config chunks;
    backups = Backup_store.create ~secret:device.Device.secret ~archive:device.Device.archive chunks;
  }

(** Create a fresh database on the device (overwrites any existing one);
    [config.shards] must match the device's width. *)
let create ?(config = Chunk_config.default) ?object_config (device : Device.t) : t =
  let config =
    if Int.equal config.Chunk_config.shards (Device.width device) then config
    else if Int.equal config.Chunk_config.shards Chunk_config.default.Chunk_config.shards then
      (* caller left shards at the default: follow the device *)
      { config with Chunk_config.shards = Device.width device }
    else invalid_arg "Tdb.create: config.shards disagrees with the device's shard width"
  in
  assemble ?object_config device
    (Shard_store.create ~config ~secret:device.Device.secret ~counters:(Device.counters device)
       (Device.stores device))

(** Open an existing database, running recovery and tamper checks. The
    shard width comes from the device (and is cross-checked against the
    width persisted in the store itself).
    @raise Chunk_store.Recovery_failed if there is no valid anchor or the
    width disagrees with what the store records;
    @raise Tamper_detected on hash/MAC/counter violations. *)
let open_existing ?(config = Chunk_config.default) ?object_config (device : Device.t) : t =
  let config = { config with Chunk_config.shards = Device.width device } in
  assemble ?object_config device
    (Shard_store.open_existing ~config ~secret:device.Device.secret ~counters:(Device.counters device)
       (Device.stores device))

let close (db : t) : unit = Object_store.close db.objects
let checkpoint (db : t) : unit = Object_store.checkpoint db.objects

(** Idle-time maintenance: log cleaning (paper Section 3.2.1). *)
let idle_maintenance (db : t) : unit = Shard_store.clean db.chunks

(* --- transactions --- *)

let with_txn ?durable (db : t) f = Object_store.with_txn ?durable db.objects f
let with_ctxn ?durable (db : t) f = Cstore.with_ctxn ?durable db.objects f
let begin_txn (db : t) = Object_store.begin_ db.objects
let begin_ctxn (db : t) = Cstore.begin_ db.objects

(* --- backups --- *)

let backup_full (db : t) : int = Backup_store.backup_full db.backups
let backup_incremental (db : t) : int = Backup_store.backup_incremental db.backups

(** Restore the newest (or [upto]) backup found in [from]'s archive into a
    fresh database on [device] (which must share the secret store that made
    the backups). *)
let restore ?upto ~(from : Device.t) (device : Device.t) : t =
  let config = { Chunk_config.default with Chunk_config.shards = Device.width device } in
  let chunks =
    Shard_store.create ~config ~secret:device.Device.secret ~counters:(Device.counters device)
      (Device.stores device)
  in
  ignore
    (Backup_store.restore ~secret:from.Device.secret ~archive:from.Device.archive ?upto ~into:chunks ());
  assemble device chunks
