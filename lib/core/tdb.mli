(** TDB — a trusted database system for Digital Rights Management.

    This is the top-level facade: it re-exports the four layers of the
    paper's architecture (chunk store, backup store, object store,
    collection store) and the platform abstractions, and provides the
    "embedded database" convenience API a DRM application links against:
    open a device, get typed transactional collections.

    {1 Layers}

    - {!Chunk_store} (with {!Chunk_config}): trusted, log-structured,
      encrypted + tamper/replay-evident storage of untyped chunks.
    - {!Backup_store}: validated full/incremental backups.
    - {!Object_store} / {!Obj_class}: typed, named C-style objects with
      transactions, strict 2PL and an object cache.
    - {!Cstore} / {!Indexer} / {!Gkey}: collections with automatically
      maintained functional indexes and insensitive iterators.
    - {!Server} / {!Client} / {!Proto} / {!Group_commit}: the networked
      service layer — sessions over Unix-domain/TCP sockets with group
      commit. *)

(** {1 Re-exported layers} *)

module Crypto : sig
  module Sha1 = Tdb_crypto.Sha1
  module Sha256 = Tdb_crypto.Sha256
  module Hmac = Tdb_crypto.Hmac
  module Aes = Tdb_crypto.Aes
  module Xtea = Tdb_crypto.Xtea
  module Triple = Tdb_crypto.Triple
  module Cbc = Tdb_crypto.Cbc
  module Drbg = Tdb_crypto.Drbg
  module Hex = Tdb_crypto.Hex
end

module Pickle = Tdb_pickle.Pickle
module Untrusted_store = Tdb_platform.Untrusted_store
module Secret_store = Tdb_platform.Secret_store
module One_way_counter = Tdb_platform.One_way_counter
module Archival_store = Tdb_platform.Archival_store
module Chunk_config = Tdb_chunk.Config
module Chunk_types = Tdb_chunk.Types
module Chunk_store = Tdb_chunk.Chunk_store
module Shard_store = Tdb_chunk.Shard_store
module Backup_store = Tdb_backup.Backup_store
module Obj_class = Tdb_objstore.Obj_class
module Object_store = Tdb_objstore.Object_store
module Lock_manager = Tdb_objstore.Lock_manager
module Gkey = Tdb_collection.Gkey
module Indexer = Tdb_collection.Indexer
module Cstore = Tdb_collection.Cstore
module Proto = Tdb_server.Proto
module Server = Tdb_server.Server
module Client = Tdb_server.Client
module Group_commit = Tdb_server.Group_commit
module Replica = Tdb_replica.Replica

exception Tamper_detected of string
(** Alias of {!Chunk_types.Tamper_detected}: validation failed in a way a
    crash cannot explain (bad Merkle hash, bad MAC, counter mismatch). *)

(** {1 Devices} *)

(** A device bundles the platform facilities TDB needs (paper Figure 1):
    the untrusted store holding the database, the secret store, the one-way
    counter, and an archival store for backups. *)
module Device : sig
  type t = {
    store : Untrusted_store.t;  (** shard 0 *)
    secret : Secret_store.t;
    counter : One_way_counter.t;  (** shard 0 *)
    archive : Archival_store.t;
    extra : (Untrusted_store.t * One_way_counter.t) array;
        (** shards 1..n-1 of a sharded database; [[||]] otherwise *)
  }

  val width : t -> int
  (** Shard count ([1 + Array.length extra]). *)

  val stores : t -> Untrusted_store.t array
  val counters : t -> One_way_counter.t array

  val in_memory : ?seed:string -> ?shards:int -> unit -> Untrusted_store.Mem.handle * t
  (** Ephemeral in-memory device (tests, examples, simulations). Returns
      the attacker's handle to shard 0's untrusted store alongside. *)

  val at_dir : ?shards:int -> string -> t
  (** Durable device rooted at a directory: [db] file, [counter] file,
      [secret] key file, [backups/] archive; shard [i ≥ 1] adds [db.i] and
      [counter.i]. With [shards] omitted the width is detected from the
      [db.i] files present (so reopening never needs the flag), falling
      back to [TDB_SHARDS] / 1 for a fresh directory. *)
end

(** {1 The embedded database} *)

type t = {
  device : Device.t;
  chunks : Shard_store.t;
  objects : Object_store.t;
  backups : Backup_store.t;
}

val create : ?config:Chunk_config.t -> ?object_config:Object_store.config -> Device.t -> t
(** Create a fresh database on the device (overwrites any existing one).
    [config.shards] must agree with the device's width (a default config
    simply follows the device). *)

val open_existing : ?config:Chunk_config.t -> ?object_config:Object_store.config -> Device.t -> t
(** Open an existing database, running recovery and tamper checks. The
    shard width comes from the device and is cross-checked against the
    width the store itself persists.
    @raise Chunk_store.Recovery_failed if there is no valid anchor or the
    shard width disagrees with the store;
    @raise Tamper_detected on hash/MAC/counter violations. *)

val close : t -> unit
val checkpoint : t -> unit

val idle_maintenance : t -> unit
(** Idle-time maintenance: log cleaning (paper Section 3.2.1). *)

(** {1 Transactions} *)

val with_txn : ?durable:bool -> t -> (Object_store.txn -> 'a) -> 'a
val with_ctxn : ?durable:bool -> t -> (Cstore.t -> 'a) -> 'a
val begin_txn : t -> Object_store.txn
val begin_ctxn : t -> Cstore.t

(** {1 Backups} *)

val backup_full : t -> int
val backup_incremental : t -> int

val restore : ?upto:int -> from:Device.t -> Device.t -> t
(** Restore the newest (or [upto]) backup found in [from]'s archive into a
    fresh database on the second device (which must share the secret store
    that made the backups). *)
